"""Sharding is an execution mode, not a semantic one.

A sharded run must be indistinguishable from the single-process run in
everything the repository treats as ground truth: delivery sets, network
metrics, and the golden trace hashes.  These sweeps pin that equivalence
(shards=0 vs 2 vs 4, across all five reduction policies on two scenario
shapes), plus the fixed shard→seed mapping and partitioner stability the
determinism story depends on — a silent change to either would reshuffle
every per-shard RSPC stream while the tests above kept passing on the
network oracle (which consumes no randomness).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.model import Schema, Subscription
from repro.scenarios import catalog  # noqa: F401 - populates the registry
from repro.scenarios.events import EventAction, compile_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.shard.engine import ShardedMatchingEngine, ShardedOracleBackend
from repro.shard.partition import HashPartitioner, RangePartitioner, shard_seed

POLICIES = ("none", "pairwise", "group", "merging", "hybrid")

SEED = 7

#: keys stripped from report comparisons (wall-clock dependent)
VOLATILE = {"wall_time", "events_per_second"}


def _strip(obj):
    if isinstance(obj, dict):
        return {k: _strip(v) for k, v in obj.items() if k not in VOLATILE}
    if isinstance(obj, list):
        return [_strip(v) for v in obj]
    return obj


def _compiled(name: str, policy: str):
    spec = dataclasses.replace(get_scenario(name), policy=policy)
    return spec, compile_scenario(spec, SEED)


def _run(spec, compiled, shards: int):
    return ScenarioRunner(
        spec, seed=SEED, backend="network", shards=shards
    ).run(compiled)


class TestNetworkDifferential:
    """shards=0 vs 2 vs 4: byte-identical reports on the network backend."""

    @pytest.mark.parametrize("scenario", ("t0-smoke", "t1-churn"))
    @pytest.mark.parametrize("policy", POLICIES)
    def test_sharded_reports_identical(self, scenario, policy):
        spec, compiled = _compiled(scenario, policy)
        baseline = _run(spec, compiled, shards=0)
        for shards in (2, 4):
            sharded = _run(spec, compiled, shards=shards)
            assert sharded.trace_hash == baseline.trace_hash, (
                f"{scenario}/{policy}: trace hash diverged at shards={shards}"
            )
            assert _strip(sharded.to_dict()) == _strip(baseline.to_dict())


class TestEngineNotificationInvariance:
    """Engine mode: deterministic-policy deliveries survive partitioning.

    Test/decision counters are partition-dependent by design (each shard
    sees only its own candidates), but what gets delivered to whom must
    not change for the deterministic policies.
    """

    @pytest.mark.parametrize("policy", ("none", "pairwise"))
    def test_notifications_equal_across_shard_counts(self, policy):
        spec, compiled = _compiled("t0-smoke", policy)

        def deliveries(shards: int):
            engine = ShardedMatchingEngine(
                shards=shards,
                policy=policy,
                delta=spec.delta,
                max_iterations=spec.max_iterations,
                merge_budget=spec.merge_budget,
                seed=SEED,
            )
            try:
                stream = []
                for event in compiled.events:
                    if event.action is EventAction.SUBSCRIBE:
                        engine.subscribe(event.subscription)
                    elif event.action is EventAction.UNSUBSCRIBE:
                        engine.unsubscribe(event.subscription_id)
                    else:
                        result = engine.match(event.publication)
                        stream.append(sorted(result.subscribers))
                return stream, engine.stats["notifications"]
            finally:
                engine.close()

        baseline_stream, baseline_total = deliveries(1)
        for shards in (2, 4):
            stream, total = deliveries(shards)
            assert stream == baseline_stream
            assert total == baseline_total


class TestShardSeedStability:
    """The shard→seed mapping is part of the reproducibility contract."""

    def test_mapping_is_stable(self):
        # Golden first draws of each shard-seeded stream: any refactor
        # that changes the mapping (salt, entropy order, spawn scheme)
        # silently reseeds every per-shard RSPC stream and invalidates
        # recorded runs while every all-equal assertion keeps passing.
        import numpy as np

        def first_draw(seed: int, index: int) -> int:
            rng = np.random.default_rng(shard_seed(seed, index))
            return int(rng.integers(2**63))

        assert first_draw(0, 0) == 5898129714599723975
        assert first_draw(7, 0) == 2017498146772375479
        assert first_draw(7, 1) == 3787493250839804920
        assert first_draw(20060331, 3) == 3104167683219270111

    def test_mapping_is_injective_over_small_ranges(self):
        import numpy as np

        seen = {
            int(np.random.default_rng(shard_seed(seed, index)).integers(2**63))
            for seed in range(8)
            for index in range(16)
        }
        assert len(seen) == 8 * 16


class TestPartitionerStability:
    def _subscription(self, subscriber: str, index: int) -> Subscription:
        schema = Schema.uniform_integer(2, 0, 100)
        return Subscription.from_constraints(
            schema,
            {"x1": (0, 10)},
            subscription_id=f"s-{index}",
            subscriber=subscriber,
        )

    def test_hash_partitioner_keys_on_subscriber(self):
        partitioner = HashPartitioner(4)
        a1 = self._subscription("client-a", 1)
        a2 = self._subscription("client-a", 2)
        b = self._subscription("client-b", 3)
        assert partitioner.shard_of(a1) == partitioner.shard_of(a2)
        # Golden assignments (crc32): a silent hash change would reshuffle
        # every subscription while all-equal assertions kept passing.
        assert partitioner.shard_of(a1) == 2
        assert partitioner.shard_of(b) == 0

    def test_hash_partitioner_falls_back_to_id(self):
        partitioner = HashPartitioner(4)
        anonymous = self._subscription(None, 9)
        assert partitioner.shard_of(anonymous) == 0

    def test_range_partitioner_buckets_by_midpoint(self):
        schema = Schema.uniform_integer(2, 0, 100)
        partitioner = RangePartitioner(4, bounds=(0.0, 100.0))
        low = Subscription.from_constraints(
            schema, {"x1": (0, 10)}, subscription_id="low"
        )
        high = Subscription.from_constraints(
            schema, {"x1": (90, 100)}, subscription_id="high"
        )
        assert partitioner.shard_of(low) == 0
        assert partitioner.shard_of(high) == 3


class TestShardedOracleParity:
    """The sharded delivery oracle agrees with the in-process backend."""

    def test_match_parity_with_linear_backend(self):
        from repro.matching.backends import make_backend

        spec, compiled = _compiled("t0-smoke", "none")
        reference = make_backend("linear")
        sharded = ShardedOracleBackend(shards=3)
        try:
            for event in compiled.events:
                if event.action is EventAction.SUBSCRIBE:
                    reference.add(event.subscription)
                    sharded.add(event.subscription)
                elif event.action is EventAction.UNSUBSCRIBE:
                    reference.remove(event.subscription_id)
                    sharded.remove(event.subscription_id)
                else:
                    ref_matched, _ = reference.match_candidates(
                        event.publication
                    )
                    shard_matched, _ = sharded.match_candidates(
                        event.publication
                    )
                    assert [
                        (s.id, s.subscriber) for s in shard_matched
                    ] == [(s.id, s.subscriber) for s in ref_matched]
        finally:
            sharded.close()
