"""Tests for the experiment command-line interface."""

import os

import pytest

from repro.experiments.cli import available_targets, main


class TestTargets:
    def test_available_targets_include_all_figures(self):
        targets = available_targets()
        for figure in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                       "fig13", "fig14", "eq2", "all"):
            assert figure in targets


class TestMain:
    def test_runs_single_figure(self, capsys, monkeypatch):
        self._shrink_configs(monkeypatch)
        assert main(["fig6"]) == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert "Figure 8" not in output

    def test_runs_chain_experiment_by_name(self, capsys, monkeypatch):
        self._shrink_configs(monkeypatch)
        assert main(["chain"]) == 0
        output = capsys.readouterr().out
        assert "Eq. 2" in output

    def test_writes_csv(self, capsys, monkeypatch, tmp_path):
        self._shrink_configs(monkeypatch)
        directory = str(tmp_path / "csv")
        assert main(["eq2", "--csv", directory]) == 0
        assert os.path.exists(os.path.join(directory, "eq2.csv"))
        contents = open(os.path.join(directory, "eq2.csv")).read()
        assert contents.startswith("brokers,")

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["not-a-figure"])

    @staticmethod
    def _shrink_configs(monkeypatch):
        """Swap every default config for its smoke preset to keep tests fast."""
        from repro.experiments import cli
        from repro.experiments.config import (
            ChainConfig,
            ComparisonConfig,
            ExtremeNonCoverConfig,
            NonCoverConfig,
            RedundantCoveringConfig,
        )

        smoke_map = {
            RedundantCoveringConfig: RedundantCoveringConfig.smoke,
            NonCoverConfig: NonCoverConfig.smoke,
            ExtremeNonCoverConfig: ExtremeNonCoverConfig.smoke,
            ComparisonConfig: ComparisonConfig.smoke,
            ChainConfig: ChainConfig.smoke,
        }
        patched = {}
        for name, (runner, config_class, figures) in cli._RUNNERS.items():
            smoke_factory = smoke_map[config_class]

            class _Proxy:  # pragma: no cover - trivial shim
                def __init__(self, factory):
                    self._factory = factory

                def __call__(self):
                    return self._factory()

                def paper(self):
                    return self._factory()

            patched[name] = (runner, _Proxy(smoke_factory), figures)
        monkeypatch.setattr(cli, "_RUNNERS", patched)
