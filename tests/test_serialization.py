"""Unit tests for :mod:`repro.model.serialization`."""

import json

import pytest

from repro.model import (
    Publication,
    Schema,
    Subscription,
    publication_from_dict,
    publication_to_dict,
    schema_from_dict,
    schema_to_dict,
    subscription_from_dict,
    subscription_from_json,
    subscription_to_dict,
    subscription_to_json,
)
from repro.model.errors import SerializationError
from repro.workloads.bike_rental import bike_rental_schema


@pytest.fixture
def schema():
    return Schema.uniform_integer(3, 0, 100, name="roundtrip")


class TestSchemaSerialization:
    def test_roundtrip_uniform(self, schema):
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored == schema
        assert restored.name == "roundtrip"

    def test_roundtrip_mixed_domains(self):
        schema = bike_rental_schema()
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.names == schema.names
        assert restored.domain("brand").cardinality == schema.domain("brand").cardinality

    def test_malformed_payload(self):
        with pytest.raises(SerializationError):
            schema_from_dict({"attributes": [{"name": "x"}]})


class TestSubscriptionSerialization:
    def test_roundtrip_dict(self, schema):
        subscription = Subscription.from_constraints(
            schema,
            {"x1": (1, 5), "x2": (2, 3)},
            subscriber="alice",
            metadata={"tag": "demo"},
        )
        restored = subscription_from_dict(subscription_to_dict(subscription), schema)
        assert restored.same_box(subscription)
        assert restored.id == subscription.id
        assert restored.subscriber == "alice"
        assert restored.metadata == {"tag": "demo"}

    def test_roundtrip_json(self, schema):
        subscription = Subscription.from_constraints(schema, {"x3": (7, 9)})
        text = subscription_to_json(subscription)
        json.loads(text)  # must be valid JSON
        restored = subscription_from_json(text, schema)
        assert restored.same_box(subscription)

    def test_invalid_json(self, schema):
        with pytest.raises(SerializationError):
            subscription_from_json("{not json", schema)

    def test_malformed_dict(self, schema):
        with pytest.raises(SerializationError):
            subscription_from_dict({"id": "x"}, schema)


class TestPublicationSerialization:
    def test_roundtrip(self, schema):
        publication = Publication.from_values(
            schema, {"x1": 1, "x2": 2, "x3": 3}, publisher="sensor"
        )
        restored = publication_from_dict(publication_to_dict(publication), schema)
        assert restored.id == publication.id
        assert restored.publisher == "sensor"
        assert restored.values.tolist() == publication.values.tolist()

    def test_malformed_dict(self, schema):
        with pytest.raises(SerializationError):
            publication_from_dict({"id": "p"}, schema)
