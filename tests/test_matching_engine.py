"""Unit tests for :mod:`repro.matching.engine` (Algorithm 5)."""

import numpy as np
import pytest

from repro.core.store import CoveringPolicyName
from repro.core.subsumption import SubsumptionChecker
from repro.matching.engine import MatchingEngine
from repro.model import Publication, Schema, Subscription
from repro.workloads.generators import random_publication, random_subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def box(schema, x1, x2, sid=None, subscriber=None):
    return Subscription.from_constraints(
        schema, {"x1": x1, "x2": x2}, subscription_id=sid, subscriber=subscriber
    )


class TestSubscribeWorkflow:
    def test_group_policy_suppresses_union_covered(
        self, table3_subscription, table3_candidates
    ):
        engine = MatchingEngine(
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-6, rng=0),
        )
        engine.subscribe_all(table3_candidates)
        decision = engine.subscribe(table3_subscription)
        assert not decision.forwarded
        assert len(engine.active_subscriptions) == 2
        assert len(engine.covered_subscriptions) == 1
        assert len(engine) == 3

    def test_unsubscribe_promotes_orphans(self, schema):
        engine = MatchingEngine(policy=CoveringPolicyName.PAIRWISE)
        engine.subscribe(box(schema, (0, 50), (0, 50), sid="big", subscriber="bob"))
        engine.subscribe(box(schema, (10, 20), (10, 20), sid="small", subscriber="amy"))
        promoted = engine.unsubscribe("big")
        assert [s.id for s in promoted] == ["small"]
        assert [s.id for s in engine.active_subscriptions] == ["small"]


class TestAlgorithm5:
    @pytest.fixture
    def engine(self, schema):
        engine = MatchingEngine(
            policy=CoveringPolicyName.PAIRWISE, use_cover_forest=True
        )
        engine.subscribe(box(schema, (0, 50), (0, 50), sid="big", subscriber="bob"))
        engine.subscribe(
            box(schema, (10, 20), (10, 20), sid="small", subscriber="amy")
        )
        engine.subscribe(
            box(schema, (60, 80), (60, 80), sid="corner", subscriber="cat")
        )
        return engine

    def test_match_inside_covered_subscription(self, engine, schema):
        result = engine.match(Publication.from_values(schema, {"x1": 15, "x2": 15}))
        assert set(result.matched_ids) == {"big", "small"}
        assert set(result.subscribers) == {"bob", "amy"}
        assert result.active_tests == 2  # big + corner
        assert result.covered_tests >= 1

    def test_no_active_match_skips_covered_set(self, engine, schema):
        result = engine.match(Publication.from_values(schema, {"x1": 55, "x2": 55}))
        assert not result
        assert result.covered_tests == 0
        assert result.total_tests == result.active_tests

    def test_match_only_active(self, engine, schema):
        result = engine.match(Publication.from_values(schema, {"x1": 70, "x2": 70}))
        assert set(result.matched_ids) == {"corner"}
        assert result.subscribers == ("cat",)

    def test_stats_accumulate(self, engine, schema):
        engine.match(Publication.from_values(schema, {"x1": 15, "x2": 15}))
        engine.match(Publication.from_values(schema, {"x1": 99, "x2": 99}))
        assert engine.stats["publications"] == 2
        assert engine.stats["notifications"] >= 2
        assert engine.stats["active_tests"] > 0

    def test_match_all(self, engine, schema):
        results = engine.match_all(
            [
                Publication.from_values(schema, {"x1": 15, "x2": 15}),
                Publication.from_values(schema, {"x1": 70, "x2": 70}),
            ]
        )
        assert len(results) == 2


class TestEquivalenceAcrossConfigurations:
    """All engine configurations must notify exactly the same subscribers."""

    @pytest.mark.parametrize("seed", range(3))
    def test_same_notifications_for_all_policies(self, seed):
        schema = Schema.uniform_integer(3, 0, 200)
        rng = np.random.default_rng(seed)
        subscriptions = []
        for index in range(40):
            subscription = random_subscription(schema, rng, width_fraction=(0.2, 0.6))
            subscriptions.append(
                subscription.replace(
                    subscription_id=f"s{index}", subscriber=f"client-{index % 7}"
                )
            )
        publications = [random_publication(schema, rng) for _ in range(30)]

        engines = {
            "flood": MatchingEngine(policy=CoveringPolicyName.NONE),
            "pairwise-flat": MatchingEngine(
                policy=CoveringPolicyName.PAIRWISE, use_cover_forest=False
            ),
            "pairwise-forest": MatchingEngine(
                policy=CoveringPolicyName.PAIRWISE, use_cover_forest=True
            ),
            "group": MatchingEngine(
                policy=CoveringPolicyName.GROUP,
                checker=SubsumptionChecker(delta=1e-9, max_iterations=2000, rng=seed),
            ),
        }
        for engine in engines.values():
            for subscription in subscriptions:
                engine.subscribe(
                    subscription.replace(subscription_id=f"{subscription.id}")
                )

        total_expected = 0
        group_missed = 0
        for publication in publications:
            expected = {
                s.subscriber for s in subscriptions if s.matches(publication)
            }
            total_expected += len(expected)
            for name, engine in engines.items():
                result = engine.match(publication)
                delivered = set(result.subscribers)
                if name == "group":
                    # The probabilistic policy may lose notifications for
                    # erroneously covered subscriptions, but never invents
                    # spurious ones.
                    assert delivered <= expected, name
                    group_missed += len(expected - delivered)
                else:
                    assert delivered == expected, name
        if total_expected:
            assert group_missed / total_expected <= 0.05

    def test_forest_reduces_covered_tests(self, schema):
        """The multi-level structure never does more covered-set work than
        the flat fallback."""
        rng = np.random.default_rng(3)
        flat = MatchingEngine(policy=CoveringPolicyName.PAIRWISE, use_cover_forest=False)
        forest = MatchingEngine(policy=CoveringPolicyName.PAIRWISE, use_cover_forest=True)
        subscriptions = [
            random_subscription(schema, rng, width_fraction=(0.2, 0.7))
            for _ in range(60)
        ]
        for subscription in subscriptions:
            flat.subscribe(subscription.replace(subscription_id=f"{subscription.id}-flat"))
            forest.subscribe(
                subscription.replace(subscription_id=f"{subscription.id}-forest")
            )
        publications = [random_publication(schema, rng) for _ in range(40)]
        for publication in publications:
            flat.match(publication)
            forest.match(publication)
        assert forest.stats["covered_tests"] <= flat.stats["covered_tests"]
