"""Regression tests for the arena's thresholded O(live) compaction.

Sustained deletion must not leave the arena scanning dead rows forever,
but small stores must also never pay a compaction pass for ordinary
free-list churn.  These tests pin the trigger threshold (at least
``_COMPACT_MIN_FREE`` dead rows *and* dead >= live), the O(moved) work
bound (rows moved <= rows dead), and the no-eager-rebuild property: a
compaction touches only the id<->row entries of rows it actually moves —
every live row already inside the packed prefix keeps its exact row.
"""

import numpy as np

from repro.core.arena import _COMPACT_MIN_FREE, SubscriptionArena
from repro.model import IntegerDomain, Schema, Subscription


def _schema(m: int = 4) -> Schema:
    return Schema(
        [(f"a{j}", IntegerDomain(0, 1_000)) for j in range(m)],
        name="compaction",
    )


def _subscription(schema: Schema, index: int) -> Subscription:
    low = float(index % 500)
    return Subscription(
        schema,
        lows=[low] * schema.m,
        highs=[low + 10.0] * schema.m,
        subscription_id=f"s{index:05d}",
    )


def _fill(arena: SubscriptionArena, schema: Schema, count: int):
    subscriptions = [_subscription(schema, i) for i in range(count)]
    for subscription in subscriptions:
        arena.add(subscription)
    return subscriptions


class TestCompactionThreshold:
    def test_small_churn_never_compacts(self):
        """Below _COMPACT_MIN_FREE dead rows the free-list churns for free."""
        schema = _schema()
        arena = SubscriptionArena()
        subscriptions = _fill(arena, schema, _COMPACT_MIN_FREE)
        # Remove all but one: free (63) > live (1) but free < threshold.
        for subscription in subscriptions[1:]:
            arena.remove(subscription.id)
        assert arena.compactions == 0
        # Re-adding recycles freed rows without any compaction pass.
        for index, subscription in enumerate(subscriptions[1:]):
            arena.add(_subscription(schema, 1000 + index))
        assert arena.compactions == 0

    def test_dead_majority_triggers_exactly_once(self):
        schema = _schema()
        arena = SubscriptionArena()
        subscriptions = _fill(arena, schema, 200)
        # Remove rows until dead (>= 64) first outnumbers live: the pass
        # fires on that removal and resets the free-list, so the next
        # removal cannot re-trigger.
        for subscription in subscriptions[:100]:
            arena.remove(subscription.id)
        assert arena.compactions == 1
        assert arena.next_row == len(arena) == 100
        arena.remove(subscriptions[100].id)
        assert arena.compactions == 1

    def test_moved_rows_bounded_by_dead_rows(self):
        schema = _schema()
        arena = SubscriptionArena()
        subscriptions = _fill(arena, schema, 300)
        removed = subscriptions[0:300:2]  # every other row -> 150 dead
        for subscription in removed:
            arena.discard(subscription.id)
        assert arena.compactions == 1
        # O(moved) bound: only tail rows moved down, never a full rewrite.
        assert arena.moved_rows <= len(removed)
        assert arena.next_row == len(arena) == 150


class TestCompactionCorrectness:
    def test_unmoved_rows_keep_identity_and_bounds(self):
        """No eager id<->row rebuild: packed-prefix rows stay untouched.

        Removing exactly the tail half makes the pass fire (dead == live
        == 128) with every survivor already inside the packed prefix, so
        the compaction must relocate nothing and every id<->row entry
        must survive byte-for-byte.
        """
        schema = _schema()
        arena = SubscriptionArena()
        subscriptions = _fill(arena, schema, 256)
        survivors = subscriptions[:128]
        rows_before = {s.id: arena.row_of(s.id) for s in survivors}
        for subscription in subscriptions[128:]:
            arena.remove(subscription.id)
        assert arena.compactions == 1
        assert arena.moved_rows == 0
        for subscription in survivors:
            assert arena.row_of(subscription.id) == rows_before[subscription.id]
            row = arena.row_of(subscription.id)
            np.testing.assert_array_equal(arena.lows[row], subscription.lows)
            np.testing.assert_array_equal(arena.highs[row], subscription.highs)

    def test_moved_rows_carry_their_bounds(self):
        """Killing the prefix forces relocation; bounds must follow."""
        schema = _schema()
        arena = SubscriptionArena()
        subscriptions = _fill(arena, schema, 256)
        # The pass fires at the 128th removal (dead == live) with every
        # dead slot below the live tail: all 128 survivors move down.
        for subscription in subscriptions[:128]:
            arena.remove(subscription.id)
        survivors = subscriptions[128:]
        assert arena.compactions == 1
        assert arena.moved_rows == len(survivors)
        assert arena.next_row == len(survivors)
        for subscription in survivors:
            row = arena.row_of(subscription.id)
            assert row < len(survivors)
            np.testing.assert_array_equal(arena.lows[row], subscription.lows)
            np.testing.assert_array_equal(arena.highs[row], subscription.highs)

    def test_add_after_compaction_appends_to_packed_tail(self):
        schema = _schema()
        arena = SubscriptionArena()
        subscriptions = _fill(arena, schema, 200)
        # Fires at the 100th removal; the free-list is cleared by the
        # pass, so the next add appends right after the live prefix.
        for subscription in subscriptions[:100]:
            arena.remove(subscription.id)
        assert arena.compactions == 1
        packed_end = arena.next_row
        assert packed_end == 100
        newcomer = _subscription(schema, 9_999)
        row = arena.add(newcomer)
        assert row == packed_end
        assert arena.row_of(newcomer.id) == row
