"""Unit tests for :mod:`repro.core.conflict_table`."""

import numpy as np
import pytest

from repro.core.conflict_table import ConflictTable, EntryRef, EntrySide
from repro.model import Schema, Subscription
from repro.model.errors import ValidationError


class TestConstruction:
    def test_table_dimensions(self, table3_subscription, table3_candidates):
        table = ConflictTable(table3_subscription, table3_candidates)
        assert table.k == 2
        assert table.m == 2
        assert table.row_defined_counts.tolist() == [1, 1]

    def test_empty_candidate_set(self, table3_subscription):
        table = ConflictTable(table3_subscription, [])
        assert table.k == 0
        assert list(table.iter_defined_entries()) == []

    def test_mismatched_schema_rejected(self, table3_subscription):
        other = Subscription.whole_space(Schema.uniform_integer(2, 0, 5, name="other"))
        with pytest.raises(ValidationError):
            ConflictTable(table3_subscription, [other])

    def test_defined_entries_match_paper_table5(
        self, table3_subscription, table3_candidates
    ):
        """Table 5: the only defined entries are x1>850 (s1) and x1<840 (s2)."""
        table = ConflictTable(table3_subscription, table3_candidates)
        assert not table.is_defined(0, 0, EntrySide.LOW)
        assert table.is_defined(0, 0, EntrySide.HIGH)
        assert not table.is_defined(0, 1, EntrySide.LOW)
        assert not table.is_defined(0, 1, EntrySide.HIGH)
        assert table.is_defined(1, 0, EntrySide.LOW)
        assert not table.is_defined(1, 0, EntrySide.HIGH)
        assert not table.is_defined(1, 1, EntrySide.LOW)
        assert not table.is_defined(1, 1, EntrySide.HIGH)
        assert table.entry_bound(0, 0, EntrySide.HIGH) == 850.0
        assert table.entry_bound(1, 0, EntrySide.LOW) == 840.0

    def test_entry_region_discrete_strictness(
        self, table3_subscription, table3_candidates
    ):
        table = ConflictTable(table3_subscription, table3_candidates)
        region_high = table.entry_region(0, 0, EntrySide.HIGH)
        assert region_high.as_tuple() == (851.0, 870.0)
        region_low = table.entry_region(1, 0, EntrySide.LOW)
        assert region_low.as_tuple() == (830.0, 839.0)
        assert table.entry_region(0, 1, EntrySide.LOW).is_empty

    def test_render_contains_undefined_cells(
        self, table3_subscription, table3_candidates
    ):
        table = ConflictTable(table3_subscription, table3_candidates)
        text = table.render()
        assert "undefined" in text
        assert "x1>850" in text
        assert "x1<840" in text


class TestCorollaries:
    def test_row_all_undefined_detects_pairwise_cover(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (10, 20), "x2": (10, 20)})
        coverer = Subscription.from_constraints(
            schema_2d, {"x1": (5, 25), "x2": (0, 30)}
        )
        table = ConflictTable(s, [coverer])
        assert table.row_all_undefined(0)
        assert table.covering_rows() == [0]

    def test_row_all_defined_detects_contained_candidate(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 100), "x2": (0, 100)})
        inside = Subscription.from_constraints(
            schema_2d, {"x1": (40, 60), "x2": (40, 60)}
        )
        table = ConflictTable(s, [inside])
        assert table.row_all_defined(0)
        assert table.covered_candidate_rows() == [0]

    def test_defined_entries_listing(self, table6_subscription, table6_candidates):
        table = ConflictTable(table6_subscription, table6_candidates)
        entries_row0 = table.defined_entries(0)
        assert EntryRef(0, 0, EntrySide.HIGH) in entries_row0
        assert all(entry.row == 0 for entry in entries_row0)
        all_entries = list(table.iter_defined_entries())
        assert len(all_entries) == int(table.row_defined_counts.sum())


class TestConflicts:
    def test_paper_example_conflict(self, table3_subscription, table3_candidates):
        """x1>850 (s1) conflicts with x1<840 (s2): no point of s lies between."""
        table = ConflictTable(table3_subscription, table3_candidates)
        first = EntryRef(0, 0, EntrySide.HIGH)
        second = EntryRef(1, 0, EntrySide.LOW)
        assert table.entries_conflict(first, second)
        assert table.entries_conflict(second, first)

    def test_non_conflicting_when_gap_exists(
        self, table6_subscription, table6_candidates
    ):
        """In the non-cover example s1's x1>850 and s2's x1<840 do conflict,
        but s2's x1>870 entry conflicts with nothing."""
        table = ConflictTable(table6_subscription, table6_candidates)
        gap_entry = EntryRef(1, 0, EntrySide.HIGH)
        assert table.is_defined(1, 0, EntrySide.HIGH)
        other_entries = [e for e in table.iter_defined_entries() if e.row != 1]
        assert not any(table.entries_conflict(gap_entry, e) for e in other_entries)

    def test_same_row_never_conflicts(self, table3_subscription, table3_candidates):
        table = ConflictTable(table3_subscription, table3_candidates)
        a = EntryRef(0, 0, EntrySide.HIGH)
        b = EntryRef(0, 0, EntrySide.HIGH)
        assert not table.entries_conflict(a, b)

    def test_different_attributes_never_conflict(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 100), "x2": (0, 100)})
        c1 = Subscription.from_constraints(schema_2d, {"x1": (0, 50), "x2": (0, 100)})
        c2 = Subscription.from_constraints(schema_2d, {"x1": (0, 100), "x2": (50, 100)})
        table = ConflictTable(s, [c1, c2])
        a = EntryRef(0, 0, EntrySide.HIGH)
        b = EntryRef(1, 1, EntrySide.LOW)
        assert not table.entries_conflict(a, b)

    def test_conflict_free_counts_match_paper_table8(
        self, table3_subscription, table7_candidates
    ):
        """Table 8: s3's two x2 entries are conflict free, s1/s2's are not."""
        table = ConflictTable(table3_subscription, table7_candidates)
        counts = table.conflict_free_counts()
        assert counts.tolist() == [0, 0, 2]

    def test_conflict_free_counts_on_row_subset(
        self, table3_subscription, table7_candidates
    ):
        table = ConflictTable(table3_subscription, table7_candidates)
        # Considering only s1 and s3: s1's x1>850 entry no longer conflicts
        # with anything (s2 was the conflicting row), so it becomes free.
        counts = table.conflict_free_counts([0, 2])
        assert counts.tolist() == [1, 2]

    def test_conflict_free_counts_against_bruteforce(self, schema_medium, rng):
        """The vectorised fc computation agrees with the O(k^2 m) definition."""
        from repro.workloads.generators import (
            random_subscription,
            random_subscription_intersecting,
        )

        for _ in range(10):
            s = random_subscription(schema_medium, rng)
            candidates = [
                random_subscription_intersecting(s, rng, cover_probability=0.3)
                for _ in range(8)
            ]
            table = ConflictTable(s, candidates)
            counts = table.conflict_free_counts()
            expected = np.zeros(table.k, dtype=int)
            for entry in table.iter_defined_entries():
                others = [
                    other
                    for other in table.iter_defined_entries()
                    if other.row != entry.row
                ]
                if not any(table.entries_conflict(entry, other) for other in others):
                    expected[entry.row] += 1
            assert counts.tolist() == expected.tolist()


class TestGapMeasures:
    def test_minimum_gap_measures_paper_example(
        self, table3_subscription, table3_candidates
    ):
        table = ConflictTable(table3_subscription, table3_candidates)
        gaps = table.minimum_gap_measures()
        # x1: s1 leaves [851, 870] (20 points) uncovered, s2 leaves [830, 839]
        # (10 points); the minimum is 10.  x2 is fully covered by both, so the
        # minimum stays at the full extent of s on x2 (4 points).
        assert gaps.tolist() == [10.0, 4.0]

    def test_minimum_gap_measures_row_subset(
        self, table3_subscription, table3_candidates
    ):
        table = ConflictTable(table3_subscription, table3_candidates)
        gaps = table.minimum_gap_measures([0])
        assert gaps.tolist() == [20.0, 4.0]

    def test_restrict(self, table3_subscription, table7_candidates):
        table = ConflictTable(table3_subscription, table7_candidates)
        restricted = table.restrict([0, 1])
        assert restricted.k == 2
        assert [c.id for c in restricted.candidates] == ["s1", "s2"]
