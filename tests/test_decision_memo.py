"""Broker per-link decision memo: hits, invalidation and the LRU bound.

The broker memoises reduction decisions keyed on (subscription id +
bounds, candidate-snapshot fingerprint).  Snapshots mint a fresh
process-unique fingerprint whenever a link's advertisement set changes,
so a stale hit is structurally impossible; this suite pins that
behaviour under churn, plus the capacity bound and the rule that
probabilistic or merge decisions are never replayed.
"""

from __future__ import annotations

import pytest

from repro.broker.broker import Broker
from repro.core.arena import CandidateSet
from repro.core.policies import ReductionDecision
from repro.core.results import Answer, DecisionMethod, SubsumptionResult
from repro.model import Schema, Subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def box(schema, x1, x2, sid):
    return Subscription.from_constraints(
        schema, {"x1": x1, "x2": x2}, subscription_id=sid
    )


def counted(broker):
    """Wrap the broker's strategy to count real (non-memo) decisions."""
    calls = []
    inner = broker.strategy.decide

    def spy(subscription, candidates):
        calls.append(subscription.id)
        return inner(subscription, candidates)

    broker.strategy.decide = spy
    return calls


class TestDecisionMemo:
    def test_unchanged_link_replays_from_memo(self, schema):
        broker = Broker("B1", neighbors=("N",), policy="group")
        calls = counted(broker)
        sub = box(schema, (0, 10), (0, 10), "s")
        snapshot = CandidateSet(())

        first = broker._decide(sub, snapshot)
        second = broker._decide(sub, snapshot)

        assert calls == ["s"]  # second call never reached the strategy
        assert second is first
        assert first.forwarded  # nothing can cover against an empty set

    def test_membership_change_invalidates(self, schema):
        """Churn on a link mints a fresh fingerprint — no stale hits."""
        broker = Broker("B1", neighbors=("N",), policy="group")
        calls = counted(broker)
        wide = box(schema, (0, 100), (0, 100), "wide")
        sub = box(schema, (10, 20), (10, 20), "s")

        before = broker._candidates_for("N")
        broker._decide(sub, before)

        # advertise `wide` on the link: the snapshot and fingerprint change
        broker.sent.setdefault("N", {})["wide"] = wide
        after = broker._candidates_for("N")
        assert after.fingerprint != before.fingerprint
        covered = broker._decide(sub, after)
        assert calls == ["s", "s"]  # memo miss, strategy re-ran
        assert covered.suppressed and covered.covered_by == ("wide",)

        # withdraw it again: a third distinct snapshot, decided afresh —
        # the stale "covered by wide" verdict cannot be served
        del broker.sent["N"]["wide"]
        empty_again = broker._candidates_for("N")
        assert empty_again.fingerprint != after.fingerprint
        fresh = broker._decide(sub, empty_again)
        assert calls == ["s", "s", "s"]
        assert fresh.forwarded

    def test_unchanged_link_reuses_snapshot(self, schema):
        """Same advertisement set -> same snapshot object and fingerprint."""
        broker = Broker("B1", neighbors=("N",), policy="group")
        broker.sent.setdefault("N", {})["wide"] = box(
            schema, (0, 100), (0, 100), "wide"
        )
        first = broker._candidates_for("N")
        second = broker._candidates_for("N")
        assert second is first

    def test_lru_bound_holds_under_churn(self, schema):
        broker = Broker("B1", neighbors=("N",), policy="group")
        broker.DECISION_MEMO_SIZE = 8
        snapshot = CandidateSet(())
        for index in range(50):
            sub = box(schema, (index, index + 1), (0, 10), f"s{index}")
            broker._decide(sub, snapshot)
            assert len(broker._decision_memo) <= 8

        # the most recent keys survive, the oldest were evicted
        calls = counted(broker)
        broker._decide(box(schema, (49, 50), (0, 10), "s49"), snapshot)
        assert calls == []
        broker._decide(box(schema, (0, 1), (0, 10), "s0"), snapshot)
        assert calls == ["s0"]

    def test_memo_disabled_with_zero_capacity(self, schema):
        broker = Broker("B1", neighbors=("N",), policy="group")
        broker.DECISION_MEMO_SIZE = 0
        calls = counted(broker)
        sub = box(schema, (0, 10), (0, 10), "s")
        snapshot = CandidateSet(())
        broker._decide(sub, snapshot)
        broker._decide(sub, snapshot)
        assert calls == ["s", "s"]
        assert len(broker._decision_memo) == 0


class TestMemoizability:
    """Only draw-free decisions may be replayed (RNG soundness)."""

    def _decision(self, schema, *, merged=None, result=None):
        return ReductionDecision(
            subscription=box(schema, (0, 10), (0, 10), "s"),
            forwarded=result is None or not result.covered,
            merged=merged,
            result=result,
        )

    def _result(self, method, answer=Answer.COVERED):
        return SubsumptionResult(
            answer=answer,
            method=method,
            original_set_size=1,
            reduced_set_size=1,
        )

    def test_plain_and_deterministic_decisions_are_memoizable(self, schema):
        broker = Broker("B1", policy="group")
        assert broker._memoizable(self._decision(schema))
        for method in (
            DecisionMethod.EMPTY_CANDIDATE_SET,
            DecisionMethod.PAIRWISE_COVER,
            DecisionMethod.POLYHEDRON_WITNESS,
            DecisionMethod.EMPTY_MCS,
        ):
            assert broker._memoizable(
                self._decision(schema, result=self._result(method))
            )

    def test_probabilistic_and_merged_decisions_are_not(self, schema):
        broker = Broker("B1", policy="group")
        probabilistic = self._decision(
            schema,
            result=self._result(DecisionMethod.RSPC_EXHAUSTED),
        )
        assert not broker._memoizable(probabilistic)
        merged = self._decision(
            schema, merged=box(schema, (0, 50), (0, 50), "m")
        )
        assert not broker._memoizable(merged)
