"""Unit tests for :mod:`repro.model.predicates`."""

import pytest

from repro.model.attributes import CategoricalDomain, ContinuousDomain, IntegerDomain
from repro.model.errors import ValidationError
from repro.model.intervals import Interval
from repro.model.predicates import Operator, Predicate


@pytest.fixture
def integer_domain():
    return IntegerDomain(0, 100)


@pytest.fixture
def continuous_domain():
    return ContinuousDomain(0.0, 100.0)


@pytest.fixture
def categorical_domain():
    return CategoricalDomain(["a", "b", "c", "d"])


class TestToInterval:
    def test_eq(self, integer_domain):
        assert Predicate.eq("x", 5).to_interval(integer_domain) == Interval(5, 5)

    def test_ge(self, integer_domain):
        assert Predicate.ge("x", 5).to_interval(integer_domain) == Interval(5, 100)

    def test_gt_discrete_shrinks_a_tick(self, integer_domain):
        assert Predicate.gt("x", 5).to_interval(integer_domain) == Interval(6, 100)

    def test_gt_continuous_keeps_bound(self, continuous_domain):
        assert Predicate.gt("x", 5).to_interval(continuous_domain) == Interval(5, 100)

    def test_le(self, integer_domain):
        assert Predicate.le("x", 5).to_interval(integer_domain) == Interval(0, 5)

    def test_lt_discrete(self, integer_domain):
        assert Predicate.lt("x", 5).to_interval(integer_domain) == Interval(0, 4)

    def test_between(self, integer_domain):
        assert Predicate.between("x", 3, 9).to_interval(integer_domain) == Interval(3, 9)

    def test_any(self, integer_domain):
        assert Predicate.any("x").to_interval(integer_domain) == Interval(0, 100)

    def test_in_categorical(self, categorical_domain):
        predicate = Predicate.member_of("x", ["b", "c"])
        assert predicate.to_interval(categorical_domain) == Interval(1, 2)

    def test_in_requires_categorical(self, integer_domain):
        with pytest.raises(ValidationError):
            Predicate.member_of("x", [1, 2]).to_interval(integer_domain)

    def test_gt_at_top_of_domain_is_empty(self, integer_domain):
        assert Predicate.gt("x", 100).to_interval(integer_domain).is_empty

    def test_lt_at_bottom_of_domain_is_empty(self, integer_domain):
        assert Predicate.lt("x", 0).to_interval(integer_domain).is_empty

    def test_between_clips_to_domain(self, integer_domain):
        assert Predicate.between("x", -5, 200).to_interval(integer_domain) == Interval(
            0, 100
        )


class TestMatches:
    def test_matches_value(self, integer_domain):
        assert Predicate.ge("x", 10).matches(10, integer_domain)
        assert not Predicate.ge("x", 10).matches(9, integer_domain)

    def test_matches_categorical(self, categorical_domain):
        assert Predicate.eq("x", "b").matches("b", categorical_domain)
        assert not Predicate.eq("x", "b").matches("c", categorical_domain)

    def test_matches_empty_interval_is_false(self, integer_domain):
        assert not Predicate.gt("x", 100).matches(100, integer_domain)


class TestSerialization:
    @pytest.mark.parametrize(
        "predicate",
        [
            Predicate.eq("x", 5),
            Predicate.ge("x", 1),
            Predicate.between("x", 2, 7),
            Predicate.any("x"),
            Predicate.member_of("x", ["a", "b"]),
        ],
    )
    def test_roundtrip(self, predicate):
        assert Predicate.from_dict(predicate.to_dict()) == predicate

    def test_str_renderings(self):
        assert "==" in str(Predicate.eq("x", 5))
        assert "*" in str(Predicate.any("x"))
        assert "<=" in str(Predicate.between("x", 1, 2))
        assert "in" in str(Predicate.member_of("x", ["a"]))

    def test_operator_str(self):
        assert str(Operator.GE) == "ge"
