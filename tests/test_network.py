"""Integration tests for the broker overlay simulator."""

import pytest

from repro.broker import BrokerNetwork, CoveringPolicy, line_topology
from repro.model import Publication, Schema, Subscription
from repro.workloads.generators import publication_inside


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def box(schema, x1, x2, sid=None):
    return Subscription.from_constraints(
        schema, {"x1": x1, "x2": x2}, subscription_id=sid
    )


def build_paper_figure1_network(policy, rng=0):
    """The 9-broker overlay of Figure 1 (a tree)."""
    edges = [
        ("B1", "B3"),
        ("B2", "B3"),
        ("B3", "B4"),
        ("B4", "B5"),
        ("B4", "B6"),
        ("B4", "B7"),
        ("B7", "B8"),
        ("B7", "B9"),
    ]
    return BrokerNetwork(edges, policy=policy, rng=rng)


class TestTopologyConstruction:
    def test_brokers_created_on_demand(self, schema):
        network = BrokerNetwork([("A", "B"), ("B", "C")], policy=CoveringPolicy.NONE)
        assert set(network.broker_ids) == {"A", "B", "C"}
        assert len(network.edges) == 2
        assert network.brokers["B"].neighbors == ["A", "C"]

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            BrokerNetwork([("A", "A")])

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            BrokerNetwork([])

    def test_unknown_client_rejected(self, schema):
        network = BrokerNetwork(line_topology(2), policy=CoveringPolicy.NONE)
        with pytest.raises(KeyError):
            network.publish("ghost", Publication.from_values(schema, {"x1": 1, "x2": 1}))


class TestFigure1Scenario:
    """Reproduces the subscription/delivery-tree walkthrough of Section 2."""

    def test_covered_subscription_not_propagated_but_still_served(self, schema):
        network = build_paper_figure1_network(CoveringPolicy.PAIRWISE)
        network.attach_client("S1", "B1")
        network.attach_client("S2", "B6")
        network.attach_client("P1", "B9")
        network.attach_client("P2", "B5")

        s1 = box(schema, (0, 60), (0, 60), sid="s1")
        s2 = box(schema, (10, 20), (10, 20), sid="s2")  # s2 ⊑ s1
        network.subscribe("S1", s1)
        messages_after_s1 = network.metrics.subscription_messages
        # s1 floods the whole tree: one message per link.
        assert messages_after_s1 == len(network.edges)

        network.subscribe("S2", s2)
        # s2 is covered at B4 (which already knows s1), so it does not reach
        # B5, B7, B8, B9: only B6->B4 and B4->B3, B3->B1, B3->B2 carry it.
        assert network.metrics.subscription_messages - messages_after_s1 < len(
            network.edges
        )
        assert network.metrics.suppressed_subscriptions >= 1

        # n1 published at P1 (B9) matches s2 and therefore also s1: both
        # subscribers must be notified even though s2 was never forwarded.
        n1 = Publication.from_values(schema, {"x1": 15, "x2": 15})
        delivered = network.publish("P1", n1)
        assert {record.subscriber for record in delivered} == {"S1", "S2"}

        # n2 published at P2 (B5) matches s1 but not s2.
        n2 = Publication.from_values(schema, {"x1": 50, "x2": 50})
        delivered = network.publish("P2", n2)
        assert {record.subscriber for record in delivered} == {"S1"}

        assert network.metrics.missed_notifications == 0
        assert network.metrics.delivery_ratio == 1.0

    def test_flooding_policy_propagates_everything(self, schema):
        network = build_paper_figure1_network(CoveringPolicy.NONE)
        network.attach_client("S1", "B1")
        network.attach_client("S2", "B6")
        network.subscribe("S1", box(schema, (0, 60), (0, 60)))
        first = network.metrics.subscription_messages
        network.subscribe("S2", box(schema, (10, 20), (10, 20)))
        # Without covering, both subscriptions flood every link.
        assert network.metrics.subscription_messages == 2 * first


class TestPolicyComparison:
    def test_group_policy_reduces_subscription_traffic(self, schema, rng):
        """Group covering forwards no more subscriptions than pair-wise,
        which forwards no more than flooding (Table 3-style workload)."""
        results = {}
        for policy in (CoveringPolicy.NONE, CoveringPolicy.PAIRWISE, CoveringPolicy.GROUP):
            network = BrokerNetwork(
                line_topology(6), policy=policy, rng=1, delta=1e-6
            )
            network.attach_client("subscriber", "B1")
            subscriptions = [
                box(schema, (0, 40), (0, 80), sid=f"a-{policy.value}"),
                box(schema, (30, 80), (0, 80), sid=f"b-{policy.value}"),
                box(schema, (5, 70), (10, 60), sid=f"c-{policy.value}"),  # union-covered
                box(schema, (10, 20), (20, 30), sid=f"d-{policy.value}"),  # pairwise-covered
            ]
            for subscription in subscriptions:
                network.subscribe("subscriber", subscription)
            results[policy.value] = network.metrics.subscription_messages
        assert results["pairwise"] <= results["none"]
        assert results["group"] <= results["pairwise"]
        assert results["group"] < results["none"]

    def test_delivery_preserved_under_group_policy(self, schema):
        network = BrokerNetwork(line_topology(5), policy=CoveringPolicy.GROUP, rng=3)
        network.attach_client("sub", "B1")
        network.attach_client("pub", "B5")
        network.subscribe("sub", box(schema, (0, 40), (0, 80), sid="a"))
        network.subscribe("sub", box(schema, (30, 80), (0, 80), sid="b"))
        network.subscribe("sub", box(schema, (5, 70), (10, 60), sid="c"))
        import numpy as np

        generator = np.random.default_rng(5)
        for index in range(30):
            publication = Publication(
                schema,
                [
                    float(generator.integers(0, 101)),
                    float(generator.integers(0, 101)),
                ],
                publication_id=f"p{index}",
            )
            network.publish("pub", publication)
        # The union-covered subscription c entered at the same broker as a
        # and b, so no notification can be lost in this configuration.
        assert network.metrics.missed_notifications == 0

    def test_routing_table_sizes_reported(self, schema):
        network = BrokerNetwork(line_topology(3), policy=CoveringPolicy.NONE)
        network.attach_client("sub", "B1")
        network.subscribe("sub", box(schema, (0, 10), (0, 10)))
        sizes = network.routing_table_sizes()
        assert sizes == {"B1": 1, "B2": 1, "B3": 1}
        assert network.total_routing_entries() == 3


class TestUnsubscription:
    def test_unsubscribe_removes_routes_everywhere(self, schema):
        network = BrokerNetwork(line_topology(4), policy=CoveringPolicy.NONE)
        network.attach_client("sub", "B1")
        subscription = box(schema, (0, 10), (0, 10), sid="gone")
        network.subscribe("sub", subscription)
        assert network.total_routing_entries() == 4
        network.unsubscribe("sub", "gone")
        assert network.total_routing_entries() == 0
        assert network.metrics.unsubscription_messages > 0


class TestMetricsSummary:
    def test_summary_keys(self, schema):
        network = BrokerNetwork(line_topology(3), policy=CoveringPolicy.NONE)
        network.attach_client("sub", "B1")
        network.attach_client("pub", "B3")
        network.subscribe("sub", box(schema, (0, 50), (0, 50)))
        network.publish(
            "pub", Publication.from_values(schema, {"x1": 10, "x2": 10})
        )
        summary = network.metrics.summary()
        assert summary["notifications"] == 1
        assert summary["expected_notifications"] == 1
        assert summary["delivery_ratio"] == 1.0
        assert summary["subscription_messages"] == 2
        assert summary["publication_messages"] == 2
