"""Unit tests for :mod:`repro.utils`."""

import time

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    require,
    require_in_range,
    require_positive,
    require_probability,
)


class TestRng:
    def test_ensure_rng_from_seed(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_ensure_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_ensure_rng_from_seed_sequence(self):
        sequence = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(sequence), np.random.Generator)

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_rngs_independent_but_reproducible(self):
        first = [g.integers(0, 1000) for g in spawn_rngs(5, 3)]
        second = [g.integers(0, 1000) for g in spawn_rngs(5, 3)]
        assert first == second
        assert len(set(first)) > 1

    def test_spawn_rngs_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 4)
        assert len(children) == 4

    def test_spawn_rngs_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_rngs_zero(self):
        assert spawn_rngs(0, 0) == []


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1.0, "x")
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_require_probability(self):
        require_probability(0.0, "p")
        require_probability(1.0, "p")
        with pytest.raises(ValueError):
            require_probability(1.01, "p")

    def test_require_in_range(self):
        require_in_range(5, 0, 10, "v")
        with pytest.raises(ValueError):
            require_in_range(11, 0, 10, "v")


class TestStopwatch:
    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.005
        assert not watch.running

    def test_manual_start_stop(self):
        watch = Stopwatch()
        watch.start()
        assert watch.running
        assert watch.elapsed >= 0.0
        elapsed = watch.stop()
        assert elapsed == watch.elapsed

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()
