"""Unit tests for :mod:`repro.core.witness`."""

import numpy as np
import pytest

from repro.core.conflict_table import ConflictTable
from repro.core.witness import (
    compute_point_witness_probability,
    estimate_smallest_witness,
    find_point_witness,
    find_polyhedron_witness_greedy,
    point_is_witness,
    witness_box_from_entries,
)
from repro.model import Schema, Subscription


class TestPointWitness:
    def test_point_is_witness(self, table6_subscription, table6_candidates):
        # x1 = 880 lies inside s but outside both candidates (the gap region).
        assert point_is_witness(np.array([880.0, 1004.0]), table6_candidates)
        assert not point_is_witness(np.array([845.0, 1004.0]), table6_candidates)

    def test_point_is_witness_empty_set(self):
        assert point_is_witness(np.array([1.0, 2.0]), [])

    def test_find_point_witness_in_noncover_example(
        self, table6_subscription, table6_candidates, rng
    ):
        witness, trials = find_point_witness(
            table6_subscription, table6_candidates, rng, max_trials=1000
        )
        assert witness is not None
        assert trials <= 1000
        assert table6_subscription.contains_point(witness)
        assert point_is_witness(witness, table6_candidates)

    def test_find_point_witness_fails_when_covered(
        self, table3_subscription, table3_candidates, rng
    ):
        witness, trials = find_point_witness(
            table3_subscription, table3_candidates, rng, max_trials=200
        )
        assert witness is None
        assert trials == 200


class TestPolyhedronWitness:
    def test_greedy_witness_for_noncover_example(
        self, table6_subscription, table6_candidates
    ):
        table = ConflictTable(table6_subscription, table6_candidates)
        entries = find_polyhedron_witness_greedy(table)
        assert entries is not None
        assert len(entries) == table.k
        box = witness_box_from_entries(table, entries)
        assert box is not None
        # The witness box is contained in s and disjoint from every candidate.
        assert table6_subscription.covers(box)
        assert not any(c.intersects(box) for c in table6_candidates)

    def test_greedy_witness_absent_when_covered(
        self, table3_subscription, table3_candidates
    ):
        table = ConflictTable(table3_subscription, table3_candidates)
        assert find_polyhedron_witness_greedy(table) is None

    def test_greedy_witness_empty_candidate_set(self, table3_subscription):
        table = ConflictTable(table3_subscription, [])
        assert find_polyhedron_witness_greedy(table) == []

    def test_witness_box_of_conflicting_entries_is_none(
        self, table3_subscription, table3_candidates
    ):
        from repro.core.conflict_table import EntryRef, EntrySide

        table = ConflictTable(table3_subscription, table3_candidates)
        entries = [EntryRef(0, 0, EntrySide.HIGH), EntryRef(1, 0, EntrySide.LOW)]
        assert witness_box_from_entries(table, entries) is None


class TestRhoWEstimation:
    def test_estimate_for_paper_example(self, table3_subscription, table3_candidates):
        table = ConflictTable(table3_subscription, table3_candidates)
        estimate = estimate_smallest_witness(table)
        # I(s) = 41 * 4 = 164; the per-attribute minimum gaps are 10 and 4.
        assert estimate.subscription_size == 164.0
        assert estimate.witness_size == 40.0
        assert estimate.rho_w == pytest.approx(40.0 / 164.0)
        assert estimate.per_attribute_gaps == (10.0, 4.0)

    def test_estimate_with_no_candidates_gives_one(self, table3_subscription):
        table = ConflictTable(table3_subscription, [])
        assert estimate_smallest_witness(table).rho_w == 1.0

    def test_rho_w_bounded_by_one(self, schema_small, rng):
        s = Subscription.from_constraints(schema_small, {"x1": (10, 20)})
        far = Subscription.from_constraints(schema_small, {"x1": (500, 600)})
        assert compute_point_witness_probability(s, [far]) <= 1.0

    def test_rho_w_larger_when_less_covered(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 99), "x2": (0, 99)})
        big = Subscription.from_constraints(schema_2d, {"x1": (0, 89), "x2": (0, 99)})
        small = Subscription.from_constraints(schema_2d, {"x1": (0, 9), "x2": (0, 99)})
        assert compute_point_witness_probability(s, [small]) > (
            compute_point_witness_probability(s, [big])
        )

    def test_rho_w_uses_reduced_rows(self, table3_subscription, table7_candidates):
        table = ConflictTable(table3_subscription, table7_candidates)
        full = estimate_smallest_witness(table)
        reduced = estimate_smallest_witness(table, rows=[0, 1])
        # Dropping s3 (which narrows x2) can only increase the witness size.
        assert reduced.witness_size >= full.witness_size
