"""Unit tests for :mod:`repro.model.intervals`."""

import math

import pytest

from repro.model.intervals import Interval


class TestConstruction:
    def test_simple_interval(self):
        interval = Interval(1.0, 5.0)
        assert interval.low == 1.0
        assert interval.high == 5.0
        assert not interval.is_empty

    def test_empty_interval(self):
        assert Interval.empty().is_empty

    def test_reversed_bounds_are_empty(self):
        assert Interval(5.0, 1.0).is_empty

    def test_point_interval(self):
        point = Interval.point(3.0)
        assert point.is_point
        assert point.contains(3.0)
        assert not point.contains(3.5)

    def test_unbounded_interval(self):
        unbounded = Interval.unbounded()
        assert unbounded.contains(1e300)
        assert unbounded.contains(-1e300)
        assert not unbounded.is_bounded

    def test_hull_of_intervals(self):
        hull = Interval.hull([Interval(0, 2), Interval(5, 7), Interval.empty()])
        assert hull == Interval(0, 7)

    def test_hull_of_empty_inputs(self):
        assert Interval.hull([]).is_empty
        assert Interval.hull([Interval.empty()]).is_empty


class TestPredicates:
    def test_contains_boundaries(self):
        interval = Interval(10, 20)
        assert interval.contains(10)
        assert interval.contains(20)
        assert not interval.contains(9.999)
        assert not interval.contains(20.001)

    def test_contains_interval(self):
        outer = Interval(0, 10)
        assert outer.contains_interval(Interval(2, 8))
        assert outer.contains_interval(Interval(0, 10))
        assert not outer.contains_interval(Interval(-1, 5))
        assert not outer.contains_interval(Interval(5, 11))

    def test_empty_contained_in_everything(self):
        assert Interval(0, 1).contains_interval(Interval.empty())
        assert not Interval.empty().contains_interval(Interval(0, 1))

    def test_covers_alias(self):
        assert Interval(0, 10).covers(Interval(1, 2))

    def test_intersects(self):
        assert Interval(0, 5).intersects(Interval(5, 10))
        assert Interval(0, 5).intersects(Interval(3, 4))
        assert not Interval(0, 5).intersects(Interval(6, 10))
        assert not Interval(0, 5).intersects(Interval.empty())

    def test_overlaps_strictly(self):
        assert Interval(0, 5).overlaps_strictly(Interval(4, 10))
        assert not Interval(0, 5).overlaps_strictly(Interval(5, 10))

    def test_span(self):
        assert Interval(2, 6).span == 4
        assert Interval.point(2).span == 0
        assert Interval.empty().span == 0

    def test_is_bounded(self):
        assert Interval(0, 1).is_bounded
        assert not Interval(0, math.inf).is_bounded


class TestCombinators:
    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 10)) == Interval(3, 5)

    def test_intersection_disjoint_is_empty(self):
        assert Interval(0, 2).intersection(Interval(3, 5)).is_empty

    def test_intersection_with_empty(self):
        assert Interval(0, 2).intersection(Interval.empty()).is_empty

    def test_union_hull(self):
        assert Interval(0, 2).union_hull(Interval(5, 8)) == Interval(0, 8)

    def test_clamp(self):
        assert Interval(0, 10).clamp(3, 7) == Interval(3, 7)
        assert Interval(0, 10).clamp(20, 30).is_empty

    def test_shift(self):
        assert Interval(1, 2).shift(3) == Interval(4, 5)
        assert Interval.empty().shift(3).is_empty

    def test_expand(self):
        assert Interval(5, 6).expand(2) == Interval(3, 8)

    def test_split(self):
        left, right = Interval(0, 10).split(4)
        assert left == Interval(0, 4)
        assert right == Interval(4, 10)

    def test_split_outside_range(self):
        left, right = Interval(0, 10).split(20)
        assert left == Interval(0, 10)
        assert right.is_empty

    def test_difference_middle(self):
        pieces = Interval(0, 10).difference(Interval(3, 7))
        assert pieces == (Interval(0, 3), Interval(7, 10))

    def test_difference_disjoint(self):
        assert Interval(0, 10).difference(Interval(20, 30)) == (Interval(0, 10),)

    def test_difference_containing(self):
        assert Interval(3, 5).difference(Interval(0, 10)) == ()

    def test_difference_of_empty(self):
        assert Interval.empty().difference(Interval(0, 1)) == ()


class TestMisc:
    def test_midpoint(self):
        assert Interval(0, 10).midpoint == 5.0

    def test_midpoint_of_empty_raises(self):
        with pytest.raises(ValueError):
            Interval.empty().midpoint

    def test_midpoint_of_unbounded_raises(self):
        with pytest.raises(ValueError):
            Interval(0, math.inf).midpoint

    def test_as_tuple_and_iter(self):
        interval = Interval(1, 2)
        assert interval.as_tuple() == (1, 2)
        assert list(interval) == [1, 2]

    def test_dunder_contains(self):
        interval = Interval(0, 10)
        assert 5 in interval
        assert Interval(2, 3) in interval
        assert "text" not in interval

    def test_pretty(self):
        assert Interval(1, 2).pretty() == "[1, 2]"
        assert Interval.empty().pretty() == "[]"
        assert Interval(1, 2).pretty(precision=1) == "[1.0, 2.0]"

    def test_hashable_and_equal(self):
        assert Interval(1, 2) == Interval(1.0, 2.0)
        assert len({Interval(1, 2), Interval(1, 2)}) == 1
