"""Tests of the pluggable reduction-strategy layer.

Covers the registry seam itself, the two new strategies (merging and
hybrid), the MCS-minimized suppression dependencies of the group policy,
and the end-to-end guarantees the refactor must preserve:

* the covering strategies (``none``/``pairwise``/``group``) deliver
  identical notification sets on the canonical churn/burst scenarios
  (no behaviour change from the refactor);
* the merging strategies never *miss* a notification — their extra
  deliveries are exactly the ones counted as false positives;
* strategy selection threads through specs, traces and replays.
"""

import dataclasses

import pytest

from repro.broker import BrokerNetwork, line_topology
from repro.broker.broker import Broker
from repro.broker.messages import SubscriptionMessage, UnsubscriptionMessage
from repro.core.policies import (
    DEFAULT_MERGE_BUDGET,
    GroupStrategy,
    HybridStrategy,
    MergingStrategy,
    NoneStrategy,
    PairwiseStrategy,
    ReductionPolicyName,
    ReductionStrategy,
    STRATEGY_NAMES,
    make_strategy,
    register_strategy,
    strategy_names,
)
from repro.core.store import CoveringPolicyName, SubscriptionStore
from repro.core.subsumption import SubsumptionChecker
from repro.matching.engine import MatchingEngine
from repro.model import Publication, Schema, Subscription
from repro.scenarios import catalog  # noqa: F401 - populates the registry
from repro.scenarios.registry import REGISTRY
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def box(schema, x1, x2, sid=None, subscriber=None):
    return Subscription.from_constraints(
        schema, {"x1": x1, "x2": x2}, subscription_id=sid, subscriber=subscriber
    )


def point(schema, x1, x2, pid=None):
    return Publication.from_values(
        schema, {"x1": x1, "x2": x2}, publication_id=pid
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestStrategyRegistry:
    def test_builtin_names(self):
        assert STRATEGY_NAMES == (
            "none", "pairwise", "group", "merging", "hybrid"
        )
        assert set(STRATEGY_NAMES) <= set(strategy_names())

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("none", NoneStrategy),
            ("pairwise", PairwiseStrategy),
            ("group", GroupStrategy),
            ("merging", MergingStrategy),
            ("hybrid", HybridStrategy),
        ],
    )
    def test_make_strategy_by_name_and_enum(self, name, cls):
        assert isinstance(make_strategy(name), cls)
        assert isinstance(make_strategy(ReductionPolicyName(name)), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown reduction strategy"):
            make_strategy("bogus")

    def test_instance_passthrough(self):
        strategy = MergingStrategy(merge_budget=0.1)
        assert make_strategy(strategy) is strategy

    def test_custom_strategy_registration(self, schema):
        class Flooding(NoneStrategy):
            pass

        @register_strategy("always-forward-test")
        def _factory(checker=None, merge_budget=DEFAULT_MERGE_BUDGET):
            return Flooding()

        try:
            assert "always-forward-test" in strategy_names()
            store = SubscriptionStore(policy="always-forward-test")
            store.add(box(schema, (0, 10), (0, 10), sid="a"))
            store.add(box(schema, (0, 10), (0, 10), sid="b"))
            assert store.active_count == 2
            # The registered name flows through every layer: network,
            # spec round-trip and the runner.
            network = BrokerNetwork(
                line_topology(2), policy="always-forward-test", rng=0
            )
            network.attach_client("c", "B1")
            network.subscribe("c", box(schema, (0, 10), (0, 10), sid="n1"))
            spec = dataclasses.replace(
                REGISTRY.get("t0-smoke"), policy="always-forward-test"
            )
            assert spec.to_dict()["policy"] == "always-forward-test"
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec
            report = ScenarioRunner(spec, seed=1).run()
            assert report.policy == "always-forward-test"
            assert report.totals["suppressed_subscriptions"] == 0
        finally:
            from repro.core import policies

            policies._STRATEGY_FACTORIES.pop("always-forward-test", None)

    def test_checker_shared_with_strategy(self):
        checker = SubsumptionChecker(rng=1)
        strategy = make_strategy("group", checker=checker)
        assert strategy.checker is checker

    def test_negative_merge_budget_rejected(self):
        with pytest.raises(ValueError):
            MergingStrategy(merge_budget=-0.1)


# ----------------------------------------------------------------------
# Merging / hybrid decisions
# ----------------------------------------------------------------------
class TestMergingStrategy:
    def test_covered_newcomer_is_suppressed_not_merged(self, schema):
        strategy = MergingStrategy(merge_budget=0.5)
        big = box(schema, (0, 50), (0, 50), sid="big")
        decision = strategy.decide(
            box(schema, (10, 20), (10, 20), sid="small"), [big]
        )
        assert decision.suppressed
        assert decision.covered_by == ("big",)
        assert decision.merged is None

    def test_adjacent_boxes_merge_within_budget(self, schema):
        strategy = MergingStrategy(merge_budget=0.0)
        left = box(schema, (0, 10), (0, 10), sid="left")
        decision = strategy.decide(
            box(schema, (10, 20), (0, 10), sid="right"), [left]
        )
        assert decision.merge_performed
        assert decision.replaced == ("left",)
        assert decision.false_volume == 0.0
        assert decision.merged.covers(left)

    def test_expensive_merge_is_forwarded(self, schema):
        strategy = MergingStrategy(merge_budget=0.1)
        far = box(schema, (0, 5), (0, 5), sid="far")
        decision = strategy.decide(
            box(schema, (80, 90), (80, 90), sid="newcomer"), [far]
        )
        assert decision.forwarded
        assert decision.merged is None

    def test_cheapest_partner_wins(self, schema):
        strategy = MergingStrategy(merge_budget=1.0)
        near = box(schema, (10, 20), (0, 10), sid="near")
        far = box(schema, (60, 70), (0, 10), sid="far")
        decision = strategy.decide(
            box(schema, (20, 30), (0, 10), sid="newcomer"), [far, near]
        )
        assert decision.replaced == ("near",)

    def test_hybrid_covers_first(self, schema):
        strategy = HybridStrategy(
            checker=SubsumptionChecker(rng=0), merge_budget=1.0
        )
        big = box(schema, (0, 50), (0, 50), sid="big")
        decision = strategy.decide(
            box(schema, (10, 20), (10, 20), sid="small"), [big]
        )
        assert decision.suppressed
        assert decision.merged is None

    def test_hybrid_merges_the_residue(self, schema):
        strategy = HybridStrategy(
            checker=SubsumptionChecker(rng=0), merge_budget=0.0
        )
        left = box(schema, (0, 10), (0, 10), sid="left")
        decision = strategy.decide(
            box(schema, (10, 20), (0, 10), sid="right"), [left]
        )
        assert decision.merge_performed
        # The probabilistic check ran (and failed to cover) first.
        assert decision.result is not None


# ----------------------------------------------------------------------
# Satellite: MCS-minimized suppression dependencies (group policy)
# ----------------------------------------------------------------------
class TestMinimizedCoverDependencies:
    def test_store_records_mcs_cover_set(
        self, table3_subscription, table7_candidates
    ):
        """``s3`` is MCS-removable, so it must not become a dependency."""
        store = SubscriptionStore(
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-6, rng=3),
        )
        for candidate in table7_candidates:
            store.add(candidate)
        decision = store.add(table3_subscription)
        assert not decision.forwarded
        assert set(decision.covered_by) == {"s1", "s2"}
        assert len(decision.covered_by) < len(table7_candidates)
        assert set(store.cover_links["s"]) == {"s1", "s2"}

    def test_broker_dependencies_shrink_and_skip_rechecks(
        self, schema_2d, table3_subscription, table7_candidates
    ):
        broker = Broker(
            "B1",
            neighbors=["B2"],
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-6, rng=1),
        )
        for candidate in table7_candidates:
            broker.handle_subscription(
                SubscriptionMessage(
                    sender=None, recipient="B1",
                    subscription=candidate.replace(subscriber="c"),
                    origin="B1",
                )
            )
        broker.handle_subscription(
            SubscriptionMessage(
                sender=None, recipient="B1",
                subscription=table3_subscription.replace(subscriber="c"),
                origin="B1",
            )
        )
        deps = broker.suppressed["B2"]["s"]
        assert deps == {"s1", "s2"}
        # The departure of the inessential candidate must not trigger a
        # re-check of ``s`` (pre-refactor it depended on every candidate).
        checks_before = len(broker.decisions)
        outgoing, decisions = broker.handle_unsubscription(
            UnsubscriptionMessage(
                sender=None, recipient="B1", subscription_id="s3", origin="B1"
            )
        )
        assert decisions == []
        assert len(broker.decisions) == checks_before
        assert "s" in broker.suppressed["B2"]

    def test_essential_departure_still_readvertises(
        self, schema_2d, table3_subscription, table7_candidates
    ):
        broker = Broker(
            "B1",
            neighbors=["B2"],
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-6, rng=1),
        )
        for candidate in table7_candidates:
            broker.handle_subscription(
                SubscriptionMessage(
                    sender=None, recipient="B1",
                    subscription=candidate.replace(subscriber="c"),
                    origin="B1",
                )
            )
        broker.handle_subscription(
            SubscriptionMessage(
                sender=None, recipient="B1",
                subscription=table3_subscription.replace(subscriber="c"),
                origin="B1",
            )
        )
        outgoing, decisions = broker.handle_unsubscription(
            UnsubscriptionMessage(
                sender=None, recipient="B1", subscription_id="s1", origin="B1"
            )
        )
        # The cover broke: ``s`` was re-checked and re-advertised.
        assert any(d.subscription_id == "s" for d in decisions)
        assert any(
            isinstance(m, SubscriptionMessage) and m.subscription.id == "s"
            for m in outgoing
        )


# ----------------------------------------------------------------------
# Differential sweeps (end to end)
# ----------------------------------------------------------------------
def _scaled_t2_burst() -> ScenarioSpec:
    """The t2-burst shape at differential-test scale."""
    spec = REGISTRY.get("t2-burst")
    scaled = []
    for phase in spec.phases:
        params = {
            key: (max(value // 4, 1) if isinstance(value, int) else value)
            for key, value in phase.params.items()
        }
        scaled.append(dataclasses.replace(phase, params=params))
    return dataclasses.replace(spec, phases=scaled)


def _run_policy(spec, policy, seed=5, **overrides):
    spec = dataclasses.replace(spec, policy=policy, **overrides)
    return ScenarioRunner(spec, seed=seed).run()


class TestCoveringStrategiesAreEquivalent:
    @pytest.mark.parametrize(
        "scenario", ["t1-churn", pytest.param("t2-burst", id="t2-burst-scaled")]
    )
    def test_identical_notification_sets(self, scenario):
        spec = (
            REGISTRY.get("t1-churn")
            if scenario == "t1-churn"
            else _scaled_t2_burst()
        )
        totals = {}
        for policy in ("none", "pairwise", "group"):
            report = _run_policy(spec, policy)
            totals[policy] = report.totals
            assert report.totals["missed_notifications"] == 0, policy
            assert "false_positive_notifications" not in report.totals
        # Identical delivery counts (the notification sets are identical:
        # nothing is missed and nothing spurious can be delivered).
        assert (
            totals["none"]["notifications"]
            == totals["pairwise"]["notifications"]
            == totals["group"]["notifications"]
        )
        assert (
            totals["none"]["expected_notifications"]
            == totals["pairwise"]["expected_notifications"]
            == totals["group"]["expected_notifications"]
        )
        # The reduction strategies must actually reduce traffic.
        assert (
            totals["pairwise"]["subscription_messages"]
            <= totals["none"]["subscription_messages"]
        )


class TestMergingNeverMisses:
    @pytest.mark.parametrize("policy", ["merging", "hybrid"])
    def test_extras_are_exactly_the_false_positives(self, policy):
        spec = dataclasses.replace(
            REGISTRY.get("t1-churn"), policy=policy, merge_budget=0.4
        )
        # Drive the network directly so the oracle lists are inspectable.
        from repro.scenarios.events import compile_scenario

        compiled = compile_scenario(spec, 5)
        runner = ScenarioRunner(spec, seed=5)
        report = runner.run(compiled)
        assert report.totals["missed_notifications"] == 0
        fp = report.totals.get("false_positive_notifications", 0)
        expected = report.totals["expected_notifications"]
        delivered = report.totals["notifications"]
        # Every owed notification arrived; every extra one is accounted
        # as a false positive.
        assert delivered == expected + fp

    def test_oracle_lists_agree_with_counters(self, schema):
        network = BrokerNetwork(
            line_topology(3), policy="merging", rng=0, merge_budget=0.6
        )
        network.attach_client("sub1", "B1")
        network.attach_client("sub2", "B1")
        network.attach_client("pub", "B3")
        network.subscribe("sub1", box(schema, (0, 10), (0, 10), sid="a"))
        network.subscribe("sub2", box(schema, (20, 30), (0, 10), sid="b"))
        network.publish("pub", point(schema, 15, 5, pid="gap"))
        metrics = network.metrics
        assert metrics.missed == []
        assert metrics.false_positive_notifications == len(
            metrics.false_positives
        )
        assert metrics.false_positive_notifications > 0
        assert metrics.merged_advertisements > 0

    def test_merging_shrinks_routing_state(self, schema):
        sizes = {}
        for policy in ("none", "merging"):
            network = BrokerNetwork(
                line_topology(3), policy=policy, rng=0, merge_budget=0.6
            )
            network.attach_client("sub", "B1")
            network.attach_client("pub", "B3")
            for index in range(6):
                network.subscribe(
                    "sub",
                    box(
                        schema,
                        (index * 10, index * 10 + 10),
                        (0, 10),
                        sid=f"s{index}",
                    ),
                )
            sizes[policy] = network.total_routing_entries()
        assert sizes["merging"] < sizes["none"]

    def test_unsubscribing_all_members_retracts_the_merged_route(self, schema):
        network = BrokerNetwork(
            line_topology(2), policy="merging", rng=0, merge_budget=0.6
        )
        network.attach_client("sub", "B1")
        network.attach_client("pub", "B2")
        network.subscribe("sub", box(schema, (0, 10), (0, 10), sid="a"))
        network.subscribe("sub", box(schema, (10, 20), (0, 10), sid="b"))
        network.unsubscribe("sub", "a")
        network.unsubscribe("sub", "b")
        delivered = network.publish("pub", point(schema, 5, 5, pid="late"))
        assert delivered == []
        assert network.brokers["B2"].table_size == 0


# ----------------------------------------------------------------------
# Engine-level merging (store mirroring)
# ----------------------------------------------------------------------
class TestEngineMerging:
    def test_merging_engine_is_lossless_locally(self, schema):
        subscriptions = [
            box(schema, (i * 10, i * 10 + 12), (0, 50), sid=f"s{i}",
                subscriber=f"client-{i}")
            for i in range(6)
        ]
        publications = [point(schema, x, 25, pid=f"p{x}") for x in range(0, 100, 7)]
        baseline = MatchingEngine(policy="none")
        merging = MatchingEngine(policy="merging", merge_budget=0.5)
        for subscription in subscriptions:
            baseline.subscribe(subscription)
            merging.subscribe(subscription)
        assert merging.store.active_count < baseline.store.active_count
        for publication in publications:
            expected = baseline.match(publication).subscribers
            got = merging.match(publication).subscribers
            assert set(got) == set(expected)

    def test_merging_engine_unsubscribe(self, schema):
        engine = MatchingEngine(policy="merging", merge_budget=0.5)
        engine.subscribe(box(schema, (0, 10), (0, 10), sid="a", subscriber="A"))
        engine.subscribe(box(schema, (10, 20), (0, 10), sid="b", subscriber="B"))
        engine.unsubscribe("a")
        result = engine.match(point(schema, 15, 5))
        assert result.subscribers == ("B",)
        engine.unsubscribe("b")
        # The orphaned merged box is retracted with its last member.
        assert len(engine) == 0
        assert engine.store.active_count == 0
        assert engine.match(point(schema, 15, 5)).matched == ()

    @pytest.mark.parametrize("policy", ["merging", "hybrid"])
    def test_suppressed_sub_survives_its_coverers_merge_and_departure(
        self, schema, policy
    ):
        """Cover links must follow an absorbed coverer onto the merged box.

        ``X`` is suppressed by ``A``; ``A`` is later absorbed into ``A|B``.
        When both merge members unsubscribe, the merged box must stay (it
        still represents ``X``), and ``X`` must keep matching.
        """
        engine = MatchingEngine(policy=policy, merge_budget=1.0)
        engine.subscribe(box(schema, (0, 50), (0, 50), sid="A", subscriber="a"))
        engine.subscribe(box(schema, (10, 20), (10, 20), sid="X", subscriber="x"))
        engine.subscribe(box(schema, (60, 80), (60, 80), sid="B", subscriber="b"))
        engine.unsubscribe("A")
        engine.unsubscribe("B")
        result = engine.match(point(schema, 15, 15))
        assert "x" in result.subscribers
        # Once X leaves too, the merged box finally goes.
        engine.unsubscribe("X")
        assert len(engine) == 0
        assert engine.store.active_count == 0

    @pytest.mark.parametrize("policy", ["merging", "hybrid"])
    def test_engine_never_misses_under_churn(self, policy):
        """Store/engine merging loses nothing across an unsubscribe storm."""
        spec = dataclasses.replace(
            REGISTRY.get("t0-smoke"), policy=policy, merge_budget=0.5
        )
        from repro.scenarios.events import EventAction, compile_scenario

        compiled = compile_scenario(spec, 5)
        merged_engine = MatchingEngine(policy=policy, merge_budget=0.5)
        oracle = MatchingEngine(policy="none")
        for event in compiled.events:
            if event.action is EventAction.SUBSCRIBE:
                merged_engine.subscribe(event.subscription)
                oracle.subscribe(event.subscription)
            elif event.action is EventAction.UNSUBSCRIBE:
                merged_engine.unsubscribe(event.subscription_id)
                oracle.unsubscribe(event.subscription_id)
            else:
                expected = set(oracle.match(event.publication).subscribers)
                got = set(merged_engine.match(event.publication).subscribers)
                assert got == expected, event.publication.id

    def test_orphaned_merge_retraction_cascades(self, schema):
        """Absorbing a merged box into a bigger one still retracts cleanly."""
        engine = MatchingEngine(policy="merging", merge_budget=1.0)
        for index, sid in enumerate("abc"):
            engine.subscribe(
                box(schema, (index * 10, index * 10 + 10), (0, 10), sid=sid,
                    subscriber=sid.upper())
            )
        assert engine.store.active_count == 1  # everything merged together
        for sid in "abc":
            engine.unsubscribe(sid)
        assert len(engine) == 0
        assert engine.store.active_count == 0
        assert engine.match(point(schema, 15, 5)).matched == ()


# ----------------------------------------------------------------------
# Spec / trace threading
# ----------------------------------------------------------------------
class TestStrategyThreading:
    def test_default_spec_serialization_unchanged(self):
        spec = REGISTRY.get("t0-smoke")
        payload = spec.to_dict()
        assert "merge_budget" not in payload
        assert payload["policy"] == "group"

    def test_merging_spec_round_trip(self):
        spec = REGISTRY.get("t0-merging")
        payload = spec.to_dict()
        assert payload["policy"] == "merging"
        assert payload["merge_budget"] == pytest.approx(0.4)
        assert ScenarioSpec.from_dict(payload) == spec

    def test_merge_budget_binds_the_trace_hash(self):
        from repro.scenarios.events import compile_scenario

        spec = REGISTRY.get("t0-merging")
        other = dataclasses.replace(spec, merge_budget=0.05)
        assert (
            compile_scenario(spec, 7).trace_hash()
            != compile_scenario(other, 7).trace_hash()
        )

    def test_merging_replay_reproduces_metrics(self, tmp_path):
        from repro.scenarios.events import compile_scenario
        from repro.scenarios.trace import read_trace, write_trace

        spec = REGISTRY.get("t0-merging")
        compiled = compile_scenario(spec, 7)
        original = ScenarioRunner(spec, seed=7).run(compiled)
        path = tmp_path / "merging.jsonl"
        write_trace(path, compiled, backend="network")
        replayed = ScenarioRunner(backend="network").run(read_trace(path))
        assert replayed.phase_metrics() == original.phase_metrics()
        assert replayed.policy == "merging"

    def test_cli_policy_override(self, capsys):
        from repro.scenarios.cli import main

        code = main(
            ["run", "t0-smoke", "--seed", "3", "--policy", "merging",
             "--merge-budget", "0.4", "--json"]
        )
        assert code == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert report["policy"] == "merging"
        assert report["totals"]["missed_notifications"] == 0

    def test_invalid_merge_budget_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(REGISTRY.get("t0-smoke"), merge_budget=-1.0)


# ----------------------------------------------------------------------
# Metrics gating
# ----------------------------------------------------------------------
class TestMetricsGating:
    def test_covering_phase_metrics_have_no_merge_keys(self):
        report = _run_policy(REGISTRY.get("t0-smoke"), "pairwise", seed=2)
        for phase in report.phases:
            assert "false_positive_notifications" not in phase.metrics
            assert "merged_advertisements" not in phase.metrics
            assert "dead_letter_publications" not in phase.metrics

    def test_merging_phase_metrics_surface_the_trade_off(self):
        report = _run_policy(
            REGISTRY.get("t0-merging"), "merging", seed=7, merge_budget=0.4
        )
        assert report.totals["merged_advertisements"] > 0
        assert report.totals["false_positive_notifications"] > 0
        assert any(
            "false_positive_notifications" in phase.metrics
            for phase in report.phases
        )
