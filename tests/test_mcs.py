"""Unit tests for :mod:`repro.core.mcs` (Algorithm 3)."""

import pytest

from repro.core.conflict_table import ConflictTable
from repro.core.exact import exact_group_cover
from repro.core.mcs import minimized_cover_set
from repro.model import Schema, Subscription
from repro.workloads.scenarios import (
    no_intersection_scenario,
    non_cover_scenario,
    redundant_covering_scenario,
)


class TestPaperExample:
    def test_table8_removes_s3_keeps_s1_s2(
        self, table3_subscription, table7_candidates
    ):
        """The worked example of Section 4.2: MCS removes exactly s3."""
        table = ConflictTable(table3_subscription, table7_candidates)
        result = minimized_cover_set(table)
        assert [c.id for c in result.kept] == ["s1", "s2"]
        removed_ids = {table7_candidates[row].id for row in result.removed_rows}
        assert removed_ids == {"s3"}
        assert result.reduced_size == 2
        assert result.removed_count == 1
        assert result.reduction_ratio(3) == pytest.approx(1 / 3)

    def test_table3_pair_is_irreducible(
        self, table3_subscription, table3_candidates
    ):
        table = ConflictTable(table3_subscription, table3_candidates)
        result = minimized_cover_set(table)
        assert result.reduced_size == 2
        assert result.removed_count == 0


class TestEliminationRules:
    def test_non_intersecting_candidates_removed(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 10), "x2": (0, 10)})
        far = Subscription.from_constraints(
            schema_2d, {"x1": (500, 600), "x2": (500, 600)}
        )
        table = ConflictTable(s, [far])
        result = minimized_cover_set(table)
        assert result.reduced_size == 0

    def test_ti_geq_k_rule(self, schema_2d):
        """With k=1 any candidate with at least one defined entry is removed."""
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 100), "x2": (0, 100)})
        partial = Subscription.from_constraints(
            schema_2d, {"x1": (0, 50), "x2": (0, 100)}
        )
        table = ConflictTable(s, [partial])
        result = minimized_cover_set(table)
        assert result.reduced_size == 0

    def test_covering_candidate_never_removed(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (10, 20), "x2": (10, 20)})
        coverer = Subscription.from_constraints(schema_2d, {"x1": (0, 30), "x2": (0, 30)})
        table = ConflictTable(s, [coverer])
        result = minimized_cover_set(table)
        assert result.reduced_size == 1

    def test_empty_table(self, table3_subscription):
        table = ConflictTable(table3_subscription, [])
        result = minimized_cover_set(table)
        assert result.reduced_size == 0
        assert result.removed_count == 0

    def test_cascading_removal(self, schema_2d):
        """Removing one candidate can make another one removable."""
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 100), "x2": (0, 100)})
        # a narrows x2 only (conflict-free entries on x2 -> removed first);
        # b and c jointly cover x1 and conflict with each other on x1.
        a = Subscription.from_constraints(schema_2d, {"x1": (0, 100), "x2": (20, 80)})
        b = Subscription.from_constraints(schema_2d, {"x1": (0, 60), "x2": (0, 100)})
        c = Subscription.from_constraints(schema_2d, {"x1": (50, 100), "x2": (0, 100)})
        table = ConflictTable(s, [a, b, c])
        result = minimized_cover_set(table)
        kept_ids = {sub.id for sub in result.kept}
        assert a.id not in kept_ids
        assert kept_ids == {b.id, c.id}


class TestAnswerPreservation:
    """MCS must never change the answer to the subsumption question."""

    @pytest.mark.parametrize("seed", range(6))
    def test_preserved_on_random_scenarios(self, seed, schema_small):
        import numpy as np

        rng = np.random.default_rng(seed)
        generators = [
            lambda: redundant_covering_scenario(schema_small, 12, rng),
            lambda: non_cover_scenario(schema_small, 12, rng),
            lambda: no_intersection_scenario(schema_small, 12, rng),
        ]
        for generate in generators:
            instance = generate()
            table = ConflictTable(instance.subscription, instance.candidates)
            reduction = minimized_cover_set(table)
            before = exact_group_cover(instance.subscription, instance.candidates)
            after = exact_group_cover(instance.subscription, list(reduction.kept))
            assert before == after
