"""Tests for the virtual-time event-driven network kernel.

Covers the :mod:`repro.broker.sim` primitives (latency models, scheduler,
per-link FIFO, egress batching), the metrics they feed
(delivery-latency percentiles, queue-depth high-water marks, histogram)
and the scenario-layer threading (spec field, trace header, replay
round-trip, CLI flag).
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.broker import (
    BrokerNetwork,
    CoveringPolicy,
    FixedLatency,
    LognormalLatency,
    ZeroLatency,
    line_topology,
    make_latency_model,
    parse_latency_model,
)
from repro.broker.messages import PublicationMessage
from repro.broker.sim import EventKernel, LatencyModel
from repro.model import Publication, Schema, Subscription
from repro.scenarios.cli import main as cli_main
from repro.scenarios.events import compile_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.trace import read_trace, write_trace


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def whole_space(schema, sid="all"):
    return Subscription.whole_space(schema, subscription_id=sid)


def make_network(policy=CoveringPolicy.NONE, size=3, **kwargs):
    network = BrokerNetwork(line_topology(size), policy=policy, rng=0, **kwargs)
    network.attach_client("sub", "B1")
    network.attach_client("pub", f"B{size}")
    return network


class TestLatencyModelParsing:
    def test_families_and_parameters(self):
        assert parse_latency_model("zero") == ("zero", ())
        assert parse_latency_model("fixed") == ("fixed", ())
        assert parse_latency_model("fixed:0.25") == ("fixed", (0.25,))
        assert parse_latency_model("lognormal:0.5,1.0") == ("lognormal", (0.5, 1.0))

    @pytest.mark.parametrize(
        "bad",
        [
            "warp",
            "zero:1",
            "fixed:a",
            "fixed:1,2",
            "fixed:-1",
            "lognormal:1,2,3",
            "lognormal:0,-1",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_latency_model(bad)

    def test_factory_builds_the_right_types(self):
        assert isinstance(make_latency_model("zero"), ZeroLatency)
        fixed = make_latency_model("fixed:0.5")
        assert isinstance(fixed, FixedLatency) and fixed.delay == 0.5
        lognormal = make_latency_model("lognormal:0.1,0.2", rng=1)
        assert isinstance(lognormal, LognormalLatency)
        assert lognormal.spec == "lognormal:0.1,0.2"

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)
        with pytest.raises(ValueError):
            LognormalLatency(sigma=-0.1)


class TestVirtualClock:
    def test_zero_model_never_advances_time(self, schema):
        network = make_network()
        network.subscribe("sub", whole_space(schema))
        network.publish("pub", Publication.from_values(schema, {"x1": 1, "x2": 1}))
        assert network.now == 0.0
        # Untimed runs don't accumulate latency samples (flat memory).
        assert network.metrics.delivery_latencies == []
        assert all(
            broker.delivered_latencies == []
            for broker in network.brokers.values()
        )

    def test_fixed_model_charges_per_hop(self, schema):
        network = make_network(latency_model="fixed:0.5")
        network.subscribe("sub", whole_space(schema))
        clock_after_subscribe = network.now
        # The subscription flooded two hops down the line.
        assert clock_after_subscribe == pytest.approx(1.0)
        network.publish("pub", Publication.from_values(schema, {"x1": 1, "x2": 1}))
        # The publication travelled B3 -> B2 -> B1: two hops at 0.5 each.
        assert network.metrics.delivery_latencies == [pytest.approx(1.0)]
        assert network.now > clock_after_subscribe

    def test_shared_model_instance_is_not_reseeded(self, schema):
        """Adopting a caller-supplied model must not splice streams."""
        model = LognormalLatency(rng=42)
        solo = LognormalLatency(rng=42)
        network_a = BrokerNetwork(
            line_topology(2), policy=CoveringPolicy.NONE, rng=0, latency_model=model
        )
        BrokerNetwork(
            line_topology(2), policy=CoveringPolicy.NONE, rng=1, latency_model=model
        )
        assert network_a.latency_model is model
        # Neither construction consumed or replaced the model's stream.
        assert model.sample("A", "B") == solo.sample("A", "B")

    def test_lognormal_model_is_deterministic_per_seed(self, schema):
        def run():
            network = make_network(latency_model="lognormal:0.0,0.5")
            network.subscribe("sub", whole_space(schema))
            for index in range(10):
                network.publish(
                    "pub",
                    Publication.from_values(
                        schema, {"x1": index, "x2": index}, publication_id=f"p{index}"
                    ),
                )
            return list(network.metrics.delivery_latencies)

        first, second = run(), run()
        assert first == second
        assert all(latency > 0 for latency in first)
        assert len(set(first)) > 1  # actually stochastic, not constant


class _ShrinkingLatency(LatencyModel):
    """Pathological model: each successive hop is faster than the last."""

    name = "fixed"
    spec = "fixed:test"

    def __init__(self):
        self.next_latency = 10.0

    def sample(self, sender, recipient):
        value = self.next_latency
        self.next_latency = max(value - 4.0, 0.0)
        return value


class TestKernelOrdering:
    def _message(self, sender, recipient, tag):
        return PublicationMessage(
            sender=sender,
            recipient=recipient,
            publication=None,
            origin=tag,
        )

    def test_per_link_fifo_never_reorders(self):
        kernel = EventKernel(_ShrinkingLatency())
        for index in range(4):
            kernel.schedule(self._message("A", "B", f"m{index}"))
        order = [message.origin for message in kernel.drain()]
        assert order == ["m0", "m1", "m2", "m3"]
        # Delivery times were clamped to the link clock, not reordered.

    def test_independent_links_may_interleave(self):
        kernel = EventKernel(_ShrinkingLatency())
        kernel.schedule(self._message("A", "B", "slow"))   # latency 10
        kernel.schedule(self._message("A", "C", "fast"))   # latency 6
        order = [message.origin for message in kernel.drain()]
        assert order == ["fast", "slow"]

    def test_zero_model_is_global_fifo(self):
        kernel = EventKernel(ZeroLatency())
        for index in range(5):
            kernel.schedule(self._message("A", "B", f"m{index}"))
        assert [m.origin for m in kernel.drain()] == [f"m{index}" for index in range(5)]

    def test_queue_depth_high_water_tracked(self):
        kernel = EventKernel(ZeroLatency())
        for index in range(7):
            kernel.schedule(self._message("A", "B", f"m{index}"))
        assert kernel.queue_depth_high_water == 7
        list(kernel.drain())
        assert kernel.pending == 0

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            EventKernel(ZeroLatency(), batch_size=0)

    def test_stale_egress_buffer_never_rewinds_the_clock(self):
        """A partial batch flushed long after buffering must not deliver
        in the past (regression: the flush used the first message's stale
        ``sent_at``, rewinding ``kernel.now``)."""
        kernel = EventKernel(FixedLatency(0.1), batch_size=2)
        # Buffer one publication on A->B at t=0 (batch stays partial).
        kernel.schedule(self._message("A", "B", "early"))
        assert kernel.pending == 1
        # Unrelated traffic advances the clock far past the buffering time.
        slow = self._message("A", "C", "slow")
        slow.sent_at = 10.0
        kernel.schedule(slow)
        times = []
        for message in kernel.drain():
            times.append(kernel.now)
        assert times == sorted(times), "virtual clock went backwards"
        assert kernel.now >= 10.1


class TestEgressBatching:
    def _delivering_network(self, batch_size):
        network = make_network(size=2, batch_size=batch_size)
        return network

    def _burst(self, schema, count):
        return [
            Publication.from_values(
                schema, {"x1": 1, "x2": 1}, publication_id=f"p{index}"
            )
            for index in range(count)
        ]

    def test_batches_collapse_message_hops(self, schema):
        network = self._delivering_network(batch_size=3)
        network.subscribe("sub", whole_space(schema))
        delivered = network.publish_batch("pub", self._burst(schema, 6))
        assert len(delivered) == 6
        assert network.metrics.missed == []
        # 6 publications crossed the single link in 2 batch hops.
        assert network.metrics.publication_messages == 2
        assert network.metrics.batched_publications == 6
        assert "batched_publications" in network.metrics.summary()

    def test_partial_batches_flush_at_drain(self, schema):
        network = self._delivering_network(batch_size=3)
        network.subscribe("sub", whole_space(schema))
        delivered = network.publish_batch("pub", self._burst(schema, 7))
        assert len(delivered) == 7
        # Two full batches plus a flushed single (not batched).
        assert network.metrics.publication_messages == 3
        assert network.metrics.batched_publications == 6

    def test_unbatched_network_is_unchanged(self, schema):
        network = self._delivering_network(batch_size=1)
        network.subscribe("sub", whole_space(schema))
        delivered = network.publish_batch("pub", self._burst(schema, 6))
        assert len(delivered) == 6
        assert network.metrics.publication_messages == 6
        assert network.metrics.batched_publications == 0
        assert "batched_publications" not in network.metrics.summary()

    def test_batching_equals_sequential_delivery(self, schema):
        batched = self._delivering_network(batch_size=4)
        sequential = self._delivering_network(batch_size=1)
        for network in (batched, sequential):
            network.subscribe("sub", whole_space(schema))
        burst = self._burst(schema, 10)
        records_batched = batched.publish_batch("pub", burst)
        records_sequential = [
            record
            for publication in burst
            for record in sequential.publish("pub", publication)
        ]
        assert records_batched == records_sequential
        assert batched.metrics.notifications == sequential.metrics.notifications
        assert (
            batched.metrics.publication_messages
            < sequential.metrics.publication_messages
        )


class TestLatencyMetrics:
    def test_latency_stats_only_reported_for_timed_models(self, schema):
        timed = make_network(latency_model="fixed:0.5")
        untimed = make_network()
        for network in (timed, untimed):
            network.subscribe("sub", whole_space(schema))
            network.publish(
                "pub", Publication.from_values(schema, {"x1": 1, "x2": 1})
            )
        assert "delivery_latency_p50" in timed.metrics.summary()
        assert "queue_depth_high_water" in timed.metrics.summary()
        assert "delivery_latency_p50" not in untimed.metrics.summary()
        assert "queue_depth_high_water" not in untimed.metrics.summary()

    def test_phase_diff_reports_interval_percentiles(self, schema):
        network = make_network(latency_model="fixed:0.25")
        network.subscribe("sub", whole_space(schema))
        network.publish("pub", Publication.from_values(schema, {"x1": 1, "x2": 1}))
        snapshot = network.mark_phase("late")
        network.publish("pub", Publication.from_values(schema, {"x1": 2, "x2": 2}))
        delta = network.metrics.diff(snapshot)
        assert delta["notifications"] == 1
        assert delta["delivery_latency_p50"] == pytest.approx(0.5)
        assert delta["queue_depth_high_water"] >= 1

    def test_queue_high_water_is_per_phase_not_lifetime(self, schema):
        """A quiet phase must not inherit the busy phase's high-water mark."""
        network = make_network(latency_model="fixed:0.25")
        network.mark_phase("busy")
        network.subscribe("sub", whole_space(schema))
        for index in range(5):
            network.publish(
                "pub",
                Publication.from_values(
                    schema, {"x1": index, "x2": index}, publication_id=f"p{index}"
                ),
            )
        busy_mark = network.metrics.phase_queue_depth_high_water
        assert busy_mark >= 1
        quiet_snapshot = network.mark_phase("quiet")
        delta = network.metrics.diff(quiet_snapshot)
        assert delta["queue_depth_high_water"] == 0
        # The lifetime mark in the summary still remembers the busy phase.
        assert network.metrics.summary()["queue_depth_high_water"] >= busy_mark

    def test_histogram_covers_all_deliveries(self, schema):
        network = make_network(latency_model="lognormal:0.0,0.5")
        network.subscribe("sub", whole_space(schema))
        for index in range(20):
            network.publish(
                "pub",
                Publication.from_values(
                    schema, {"x1": index, "x2": index}, publication_id=f"p{index}"
                ),
            )
        counts, edges = network.metrics.latency_histogram(bins=8)
        assert counts.sum() == len(network.metrics.delivery_latencies) == 20
        assert len(edges) == 9

    def test_zero_model_phase_metrics_keep_historical_keys(self, schema):
        """Latency keys must not leak into untimed runs (replay stability)."""
        network = make_network()
        snapshot = network.mark_phase("all")
        network.subscribe("sub", whole_space(schema))
        network.publish("pub", Publication.from_values(schema, {"x1": 1, "x2": 1}))
        delta = network.metrics.diff(snapshot)
        assert set(delta) == {
            "subscription_messages",
            "unsubscription_messages",
            "publication_messages",
            "notifications",
            "expected_notifications",
            "suppressed_subscriptions",
            "subsumption_checks",
            "rspc_iterations",
            "missed_notifications",
            "delivery_ratio",
        }


class TestScenarioThreading:
    def test_spec_validates_and_serializes_latency_model(self):
        spec = get_scenario("t0-smoke")
        assert spec.latency_model == "zero"
        assert "latency_model" not in spec.to_dict()
        timed = dataclasses.replace(spec, latency_model="fixed:0.1")
        assert timed.to_dict()["latency_model"] == "fixed:0.1"
        round_tripped = ScenarioSpec.from_dict(timed.to_dict())
        assert round_tripped.latency_model == "fixed:0.1"
        with pytest.raises(ValueError):
            dataclasses.replace(spec, latency_model="warp")

    def test_non_default_model_changes_the_trace_hash(self):
        spec = get_scenario("t0-smoke")
        timed = dataclasses.replace(spec, latency_model="fixed:0.1")
        assert (
            compile_scenario(spec, 7).trace_hash()
            != compile_scenario(timed, 7).trace_hash()
        )

    def test_timed_run_replays_identically(self, tmp_path):
        spec = dataclasses.replace(
            get_scenario("t0-smoke"), latency_model="lognormal:0.0,0.5"
        )
        compiled = compile_scenario(spec, seed=9)
        report = ScenarioRunner(spec, seed=9).run(compiled)
        assert report.latency_model == "lognormal:0.0,0.5"
        burst = next(p for p in report.phases if p.name == "burst")
        assert "delivery_latency_p50" in burst.metrics

        path = tmp_path / "timed.jsonl"
        write_trace(path, compiled, backend="network")
        loaded = read_trace(path)
        assert loaded.spec.latency_model == "lognormal:0.0,0.5"
        assert loaded.recorded_latency_model == "lognormal:0.0,0.5"
        replay = ScenarioRunner().run(loaded)
        assert replay.phase_metrics() == report.phase_metrics()

    def test_t0_latency_scenario_is_registered_and_timed(self):
        spec = get_scenario("t0-latency")
        assert spec.latency_model == "fixed:0.1"
        report = ScenarioRunner(spec, seed=7).run()
        assert report.latency_model == "fixed:0.1"
        assert "delivery_latency_p50" in report.totals

    def test_cli_latency_model_round_trip(self, tmp_path, capsys):
        trace_path = tmp_path / "cli.jsonl"
        assert cli_main([
            "run", "t0-smoke", "--seed", "5",
            "--latency-model", "fixed:0.2",
            "--trace", str(trace_path), "--json",
        ]) == 0
        run_report = json.loads(capsys.readouterr().out)
        assert run_report["latency_model"] == "fixed:0.2"
        assert "delivery_latency_p50" in run_report["totals"]

        assert cli_main(["replay", str(trace_path), "--json"]) == 0
        replay_report = json.loads(capsys.readouterr().out)
        assert replay_report["latency_model"] == "fixed:0.2"

        def metric_view(report):
            return [
                {key: value for key, value in phase.items() if key != "wall_time"}
                for phase in report["phases"]
            ]

        assert metric_view(replay_report) == metric_view(run_report)

    def test_cli_rejects_bad_latency_model(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "t0-smoke", "--latency-model", "warp"])
