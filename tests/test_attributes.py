"""Unit tests for :mod:`repro.model.attributes`."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.model.attributes import (
    Attribute,
    CategoricalDomain,
    ContinuousDomain,
    IntegerDomain,
    TimestampDomain,
    domain_from_dict,
)
from repro.model.errors import DomainError
from repro.model.intervals import Interval


class TestIntegerDomain:
    def test_bounds_and_cardinality(self):
        domain = IntegerDomain(1, 10)
        assert domain.lower_bound == 1.0
        assert domain.upper_bound == 10.0
        assert domain.cardinality == 10
        assert domain.extent == 10.0

    def test_invalid_bounds(self):
        with pytest.raises(DomainError):
            IntegerDomain(5, 1)

    def test_encode_decode(self):
        domain = IntegerDomain(0, 100)
        assert domain.encode(42) == 42.0
        assert domain.decode(42.0) == 42

    def test_encode_rejects_strings(self):
        with pytest.raises(DomainError):
            IntegerDomain(0, 10).encode("x")

    def test_measure_counts_points(self):
        domain = IntegerDomain(0, 100)
        assert domain.measure(Interval(3, 7)) == 5.0
        assert domain.measure(Interval(3.2, 6.9)) == 3.0  # {4, 5, 6}
        assert domain.measure(Interval(7, 3)) == 0.0

    def test_measure_clips_to_domain(self):
        domain = IntegerDomain(0, 10)
        assert domain.measure(Interval(-5, 100)) == 11.0

    def test_sample_within_interval(self):
        domain = IntegerDomain(0, 100)
        rng = np.random.default_rng(0)
        for _ in range(50):
            value = domain.sample(Interval(10, 12), rng)
            assert value in (10.0, 11.0, 12.0)

    def test_sample_empty_interval_raises(self):
        with pytest.raises(DomainError):
            IntegerDomain(0, 10).sample(Interval.empty(), np.random.default_rng(0))

    def test_snap(self):
        domain = IntegerDomain(0, 10)
        assert domain.snap(Interval(1.2, 3.8)) == Interval(2, 3)
        assert domain.snap(Interval(1.2, 1.4)).is_empty

    def test_contains_value(self):
        domain = IntegerDomain(0, 10)
        assert domain.contains_value(5)
        assert not domain.contains_value(11)
        assert not domain.contains_value("abc")

    def test_roundtrip_dict(self):
        domain = IntegerDomain(3, 9)
        assert domain_from_dict(domain.to_dict()) == domain


class TestContinuousDomain:
    def test_measure_is_length(self):
        domain = ContinuousDomain(0.0, 10.0)
        assert domain.measure(Interval(2.0, 4.5)) == pytest.approx(2.5)

    def test_measure_floors_at_resolution(self):
        domain = ContinuousDomain(0.0, 10.0, resolution=0.01)
        assert domain.measure(Interval(5.0, 5.0)) == pytest.approx(0.01)

    def test_invalid_resolution(self):
        with pytest.raises(DomainError):
            ContinuousDomain(0, 1, resolution=0)

    def test_sample_within_interval(self):
        domain = ContinuousDomain(0.0, 1.0)
        rng = np.random.default_rng(1)
        for _ in range(50):
            value = domain.sample(Interval(0.25, 0.75), rng)
            assert 0.25 <= value <= 0.75

    def test_sample_point_interval(self):
        domain = ContinuousDomain(0.0, 1.0)
        assert domain.sample(Interval(0.5, 0.5), np.random.default_rng(0)) == 0.5

    def test_gap_measure(self):
        domain = ContinuousDomain(0.0, 1.0, resolution=0.001)
        assert domain.gap_measure(0.25) == 0.25
        assert domain.gap_measure(0.0) == 0.0
        assert domain.gap_measure(1e-9) == pytest.approx(0.001)

    def test_roundtrip_dict(self):
        domain = ContinuousDomain(0.0, 2.5, resolution=0.1)
        restored = domain_from_dict(domain.to_dict())
        assert restored == domain

    def test_snap_is_identity(self):
        domain = ContinuousDomain(0.0, 10.0)
        assert domain.snap(Interval(1.3, 2.7)) == Interval(1.3, 2.7)


class TestCategoricalDomain:
    def test_encode_decode_labels(self):
        domain = CategoricalDomain(["a", "b", "c"])
        assert domain.encode("b") == 1.0
        assert domain.decode(2.0) == "c"
        assert domain.cardinality == 3

    def test_duplicate_values_rejected(self):
        with pytest.raises(DomainError):
            CategoricalDomain(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            CategoricalDomain([])

    def test_unknown_label_rejected(self):
        with pytest.raises(DomainError):
            CategoricalDomain(["a"]).encode("zzz")

    def test_encode_accepts_codes(self):
        domain = CategoricalDomain(["a", "b", "c"])
        assert domain.encode(1) == 1.0

    def test_decode_out_of_range(self):
        with pytest.raises(DomainError):
            CategoricalDomain(["a", "b"]).decode(5)

    def test_encode_members_contiguous(self):
        domain = CategoricalDomain(["a", "b", "c", "d"])
        assert domain.encode_members(["b", "c"]) == Interval(1, 2)

    def test_encode_members_non_contiguous_rejected(self):
        domain = CategoricalDomain(["a", "b", "c", "d"])
        with pytest.raises(DomainError):
            domain.encode_members(["a", "c"])

    def test_measure(self):
        domain = CategoricalDomain(["a", "b", "c", "d"])
        assert domain.measure(Interval(1, 2)) == 2.0

    def test_equality_and_hash(self):
        assert CategoricalDomain(["a", "b"]) == CategoricalDomain(["a", "b"])
        assert CategoricalDomain(["a", "b"]) != CategoricalDomain(["b", "a"])
        assert hash(CategoricalDomain(["a"])) == hash(CategoricalDomain(["a"]))

    def test_roundtrip_dict(self):
        domain = CategoricalDomain(["x", "y"])
        assert domain_from_dict(domain.to_dict()) == domain


class TestTimestampDomain:
    def test_encode_decode(self):
        domain = TimestampDomain(
            "2006-03-31T00:00:00", "2006-03-31T23:59:59", granularity_seconds=60
        )
        code = domain.encode("2006-03-31T12:00:00")
        decoded = domain.decode(code)
        assert decoded == datetime(2006, 3, 31, 12, 0, tzinfo=timezone.utc)

    def test_bounds_ordering(self):
        with pytest.raises(DomainError):
            TimestampDomain("2006-04-01", "2006-03-31")

    def test_invalid_granularity(self):
        with pytest.raises(DomainError):
            TimestampDomain("2006-03-31", "2006-04-01", granularity_seconds=0)

    def test_parse_rejects_garbage(self):
        with pytest.raises(DomainError):
            TimestampDomain("not-a-date", "2006-04-01")

    def test_measure_counts_ticks(self):
        domain = TimestampDomain(
            "2006-03-31T00:00:00", "2006-03-31T01:00:00", granularity_seconds=60
        )
        assert domain.measure(domain.full_interval()) == 61.0

    def test_accepts_datetime_objects(self):
        start = datetime(2006, 3, 31, tzinfo=timezone.utc)
        end = datetime(2006, 4, 1, tzinfo=timezone.utc)
        domain = TimestampDomain(start, end)
        assert domain.lower_bound < domain.upper_bound

    def test_equality(self):
        a = TimestampDomain("2006-03-31", "2006-04-01", 60)
        b = TimestampDomain("2006-03-31", "2006-04-01", 60)
        assert a == b
        assert hash(a) == hash(b)

    def test_roundtrip_dict(self):
        domain = TimestampDomain("2006-03-31T00:00:00", "2006-03-31T12:00:00", 60)
        restored = domain_from_dict(domain.to_dict())
        assert restored.lower_bound == domain.lower_bound
        assert restored.upper_bound == domain.upper_bound


class TestAttribute:
    def test_attribute_requires_name(self):
        with pytest.raises(DomainError):
            Attribute("", IntegerDomain(0, 1))

    def test_full_interval(self):
        attribute = Attribute("x", IntegerDomain(0, 5))
        assert attribute.full_interval() == Interval(0, 5)

    def test_to_dict_includes_description(self):
        attribute = Attribute("x", IntegerDomain(0, 5), description="demo")
        payload = attribute.to_dict()
        assert payload["name"] == "x"
        assert payload["description"] == "demo"

    def test_domain_from_dict_unknown_type(self):
        with pytest.raises(DomainError):
            domain_from_dict({"type": "mystery"})
