"""Unit tests for :mod:`repro.core.store` (active/covered set maintenance)."""

import pytest

from repro.core.store import CoveringPolicyName, SubscriptionStore
from repro.core.subsumption import SubsumptionChecker
from repro.model import Schema, Subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def box(schema, x1, x2, sid=None, subscriber=None):
    return Subscription.from_constraints(
        schema, {"x1": x1, "x2": x2}, subscription_id=sid, subscriber=subscriber
    )


class TestNonePolicy:
    def test_everything_stays_active(self, schema):
        store = SubscriptionStore(policy=CoveringPolicyName.NONE)
        store.add(box(schema, (0, 50), (0, 50)))
        store.add(box(schema, (10, 20), (10, 20)))
        assert store.active_count == 2
        assert store.stats["forwarded"] == 2
        assert store.stats["suppressed"] == 0


class TestPairwisePolicy:
    def test_covered_newcomer_suppressed(self, schema):
        store = SubscriptionStore(policy=CoveringPolicyName.PAIRWISE)
        store.add(box(schema, (0, 50), (0, 50), sid="big"))
        decision = store.add(box(schema, (10, 20), (10, 20), sid="small"))
        assert not decision.forwarded
        assert decision.covered_by == ("big",)
        assert store.active_count == 1
        assert store.cover_links["small"] == ("big",)

    def test_union_cover_not_detected_by_pairwise(
        self, schema_2d, table3_subscription, table3_candidates
    ):
        store = SubscriptionStore(policy=CoveringPolicyName.PAIRWISE)
        for candidate in table3_candidates:
            store.add(candidate)
        decision = store.add(table3_subscription)
        assert decision.forwarded  # the baseline cannot see the union cover
        assert store.active_count == 3

    def test_newcomer_demotes_existing(self, schema):
        store = SubscriptionStore(policy=CoveringPolicyName.PAIRWISE)
        store.add(box(schema, (10, 20), (10, 20), sid="small"))
        decision = store.add(box(schema, (0, 50), (0, 50), sid="big"))
        assert decision.forwarded
        assert [s.id for s in decision.demoted] == ["small"]
        assert store.active_count == 1
        assert store.cover_links["small"] == ("big",)


class TestGroupPolicy:
    def test_union_cover_detected(self, table3_subscription, table3_candidates):
        store = SubscriptionStore(
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-6, rng=3),
        )
        for candidate in table3_candidates:
            store.add(candidate)
        decision = store.add(table3_subscription)
        assert not decision.forwarded
        assert set(decision.covered_by) == {"s1", "s2"}
        assert store.active_count == 2
        assert decision.result is not None
        assert decision.result.covered

    def test_single_coverer_recorded_when_pairwise(self, schema):
        store = SubscriptionStore(
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-6, rng=3),
        )
        store.add(box(schema, (0, 50), (0, 50), sid="big"))
        decision = store.add(box(schema, (10, 20), (10, 20), sid="small"))
        assert not decision.forwarded
        assert decision.covered_by == ("big",)

    def test_stats_track_rspc_iterations(
        self, table3_subscription, table3_candidates
    ):
        store = SubscriptionStore(
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-6, rng=3),
        )
        for candidate in table3_candidates:
            store.add(candidate)
        store.add(table3_subscription)
        assert store.stats["rspc_iterations"] > 0
        assert store.stats["suppressed"] == 1


class TestRemoval:
    def test_remove_covered_subscription(self, schema):
        store = SubscriptionStore(policy=CoveringPolicyName.PAIRWISE)
        store.add(box(schema, (0, 50), (0, 50), sid="big"))
        store.add(box(schema, (10, 20), (10, 20), sid="small"))
        promoted = store.remove("small")
        assert promoted == ()
        assert store.total_count == 1
        assert "small" not in store

    def test_remove_active_promotes_orphans(self, schema):
        store = SubscriptionStore(policy=CoveringPolicyName.PAIRWISE)
        store.add(box(schema, (0, 50), (0, 50), sid="big"))
        store.add(box(schema, (10, 20), (10, 20), sid="small"))
        promoted = store.remove("big")
        assert [s.id for s in promoted] == ["small"]
        assert store.active_count == 1
        assert store.find("small") is not None
        assert store.stats["promoted"] == 1

    def test_remove_active_keeps_still_covered_orphans_suppressed(self, schema):
        store = SubscriptionStore(policy=CoveringPolicyName.PAIRWISE)
        # Two incomparable coverers that both cover "small".
        store.add(box(schema, (0, 50), (0, 100), sid="tall"))
        store.add(box(schema, (0, 100), (0, 50), sid="wide"))
        store.add(box(schema, (10, 20), (10, 20), sid="small"))
        coverer = store.cover_links["small"][0]
        promoted = store.remove(coverer)
        # The other large subscription still covers "small".
        assert promoted == ()
        assert store.find("small") is not None
        assert store.active_count == 1

    def test_remove_unknown_id_is_noop(self, schema):
        store = SubscriptionStore()
        assert store.remove("ghost") == ()

    def test_contains_and_find(self, schema):
        store = SubscriptionStore(policy=CoveringPolicyName.NONE)
        store.add(box(schema, (0, 10), (0, 10), sid="a"))
        assert "a" in store
        assert store.find("a").id == "a"
        assert store.find("zzz") is None
        assert 42 not in store
