"""Tests of the public package surface (imports, exports, metadata)."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.model",
            "repro.core",
            "repro.matching",
            "repro.broker",
            "repro.workloads",
            "repro.experiments",
            "repro.utils",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        package = importlib.import_module(module)
        assert hasattr(package, "__all__")
        for name in package.__all__:
            assert hasattr(package, name), f"{module}.{name}"

    def test_primary_workflow_symbols(self):
        # The quickstart workflow is reachable from the package root.
        schema = repro.Schema.uniform_integer(2, 0, 10)
        subscription = repro.Subscription.from_constraints(schema, {"x1": (1, 5)})
        checker = repro.SubsumptionChecker(rng=0)
        result = checker.check(subscription, [])
        assert isinstance(result, repro.SubsumptionResult)

    def test_rho_w_helper_exported(self):
        schema = repro.Schema.uniform_integer(1, 0, 9)
        s = repro.Subscription.from_constraints(schema, {"x1": (0, 9)})
        c = repro.Subscription.from_constraints(schema, {"x1": (0, 4)})
        rho = repro.compute_point_witness_probability(s, [c])
        assert rho == pytest.approx(0.5)

    def test_required_iterations_exported(self):
        assert repro.compute_required_iterations(0.5, 0.5) == 1

    def test_covering_policy_enum_exported(self):
        assert repro.CoveringPolicy("group").value == "group"
