"""Degenerate-input guards: empty bursts and empty candidate snapshots.

The batch entry points are called from loops that naturally produce
empty inputs (a publish phase of zero events, a freshly-started broker
with no routing state).  Those calls must be cheap no-ops — no oracle
round-trip, no kernel events, no checker invocations — and, where a
value is returned, field-for-field identical to what the sequential
path would have produced.
"""

from __future__ import annotations

import pytest

from repro.broker import grid_topology
from repro.broker.network import BrokerNetwork
from repro.core.arena import CandidateSet
from repro.core.policies import make_strategy, strategy_names
from repro.core.subsumption import SubsumptionChecker
from repro.model import Schema, Subscription

POLICIES = ("none", "pairwise", "group", "merging", "hybrid")

SEED = 7


def _schema() -> Schema:
    return Schema.uniform_integer(3, 0, 1_000)


def _subjects(schema: Schema, count: int = 6):
    return [
        Subscription.from_constraints(
            schema,
            {"x1": (i * 10, i * 10 + 50), "x2": (0, 500)},
            subscription_id=f"subj-{i}",
        )
        for i in range(count)
    ]


class TestPublishManyEmpty:
    def _network(self) -> BrokerNetwork:
        network = BrokerNetwork(grid_topology(2, 2), policy="pairwise")
        network.attach_client("client", "B1")
        return network

    def test_returns_empty_list(self):
        network = self._network()
        assert network.publish_many([]) == []

    def test_no_oracle_call_and_no_kernel_events(self):
        network = self._network()

        def exploding_match_batch(publications):
            raise AssertionError("oracle consulted for an empty burst")

        network._oracle.match_batch = exploding_match_batch
        scheduled_before = network.kernel.scheduled
        clock_before = network.kernel.now
        metrics_before = (
            network.metrics.publication_messages,
            network.metrics.notifications,
        )
        assert network.publish_many([]) == []
        assert network.kernel.scheduled == scheduled_before
        assert network.kernel.now == clock_before
        assert network.kernel.pending == 0
        assert (
            network.metrics.publication_messages,
            network.metrics.notifications,
        ) == metrics_before


class TestDecideBatchEmptySnapshot:
    """decide_batch against zero candidates: forwarded, checker untouched."""

    @staticmethod
    def _strategy(policy: str, checker=None):
        return make_strategy(
            policy,
            checker=checker
            or SubsumptionChecker(delta=1e-3, max_iterations=64, rng=SEED),
        )

    def test_all_policies_covered(self):
        assert set(POLICIES) == set(strategy_names())

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("snapshot", ("list", "candidate-set"))
    def test_matches_sequential_field_for_field(self, policy, snapshot):
        schema = _schema()
        subjects = _subjects(schema)
        candidates = [] if snapshot == "list" else CandidateSet([])
        scalar_strategy = self._strategy(policy)
        batch_strategy = self._strategy(policy)
        scalar = [scalar_strategy.decide(s, []) for s in subjects]
        batched = batch_strategy.decide_batch(subjects, candidates)
        assert len(batched) == len(scalar)
        for a, b in zip(scalar, batched):
            assert b.subscription.id == a.subscription.id
            assert b.forwarded is True
            assert b.covered_by == a.covered_by
            assert b.candidates_considered == a.candidates_considered == 0
            assert b.rspc_iterations == a.rspc_iterations
            assert (b.result is None) == (a.result is None)
            if b.result is not None:
                assert b.result.answer == a.result.answer
                assert b.result.method == a.result.method
                assert (
                    b.result.iterations_performed
                    == a.result.iterations_performed
                )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_no_checker_calls(self, policy):
        class ExplodingChecker(SubsumptionChecker):
            def check(self, *args, **kwargs):
                raise AssertionError("checker consulted on empty snapshot")

            def check_batch(self, *args, **kwargs):
                raise AssertionError("checker consulted on empty snapshot")

        strategy = self._strategy(
            policy,
            checker=ExplodingChecker(delta=1e-3, max_iterations=64, rng=SEED),
        )
        subjects = _subjects(_schema())
        decisions = strategy.decide_batch(subjects, [])
        assert all(d.forwarded for d in decisions)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_randomness_not_consumed(self, policy):
        """An empty-snapshot batch must not advance the RSPC stream."""
        schema = _schema()
        subjects = _subjects(schema)
        probe = Subscription.from_constraints(
            schema, {"x1": (0, 100)}, subscription_id="probe"
        )
        candidates = [
            Subscription.from_constraints(
                schema, {"x1": (0, 60)}, subscription_id=f"c{i}"
            )
            for i in range(3)
        ]
        reference = self._strategy(policy)
        exercised = self._strategy(policy)
        exercised.decide_batch(subjects, [])
        after_empty = exercised.decide(probe, candidates)
        baseline = reference.decide(probe, candidates)
        assert after_empty.forwarded == baseline.forwarded
        assert after_empty.rspc_iterations == baseline.rspc_iterations
