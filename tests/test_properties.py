"""Property-based tests (hypothesis) for the core invariants.

The strategies generate random integer boxes over a shared small schema so
that the exact oracle stays cheap; the properties cover the geometric data
model, the conflict table, RSPC soundness, the MCS answer-preservation
claim (Proposition 4), Eq. 1 and the pair-wise baseline.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.conflict_table import ConflictTable
from repro.core.decisions import detect_pairwise_cover, detect_polyhedron_witness
from repro.core.error_model import error_probability, required_iterations
from repro.core.exact import exact_group_cover, uncovered_region
from repro.core.mcs import minimized_cover_set
from repro.core.pairwise import PairwiseCoverageChecker
from repro.core.rspc import run_rspc
from repro.core.subsumption import SubsumptionChecker
from repro.core.witness import estimate_smallest_witness
from repro.model import Interval, Schema, Subscription

#: a small shared schema keeps the exact oracle fast
SCHEMA = Schema.uniform_integer(3, 0, 60)

_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def boxes(draw):
    """A random non-empty integer box over ``SCHEMA``."""
    lows = []
    highs = []
    for _ in range(SCHEMA.m):
        low = draw(st.integers(min_value=0, max_value=59))
        width = draw(st.integers(min_value=0, max_value=30))
        lows.append(low)
        highs.append(min(low + width, 60))
    return Subscription(SCHEMA, lows, highs)


@st.composite
def box_sets(draw, min_size=1, max_size=6):
    """A random subscription plus a random candidate set."""
    subscription = draw(boxes())
    candidates = draw(st.lists(boxes(), min_size=min_size, max_size=max_size))
    return subscription, candidates


# ----------------------------------------------------------------------
# Interval / box geometry
# ----------------------------------------------------------------------
class TestGeometryProperties:
    @_settings
    @given(boxes(), boxes())
    def test_intersection_is_contained_in_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is None:
            assert not a.intersects(b)
        else:
            assert a.covers(overlap)
            assert b.covers(overlap)
            assert a.intersects(b)

    @_settings
    @given(boxes(), boxes())
    def test_union_hull_covers_both(self, a, b):
        hull = a.union_hull(b)
        assert hull.covers(a) and hull.covers(b)

    @_settings
    @given(boxes(), boxes())
    def test_covers_iff_intersection_equals_smaller(self, a, b):
        overlap = a.intersection(b)
        covers = a.covers(b)
        if covers:
            assert overlap is not None and overlap.same_box(b)
        elif overlap is not None:
            assert not overlap.same_box(b)

    @_settings
    @given(boxes())
    def test_sampled_points_lie_inside(self, box):
        rng = np.random.default_rng(0)
        for _ in range(5):
            assert box.contains_point(box.sample_point(rng))

    @_settings
    @given(boxes())
    def test_size_counts_sampled_grid(self, box):
        # size() equals the number of integer points in the box.
        expected = 1
        for j in range(SCHEMA.m):
            interval = box.interval(j)
            expected *= int(interval.high - interval.low) + 1
        assert box.size() == expected

    @_settings
    @given(
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-50, max_value=50),
    )
    def test_interval_intersection_commutes(self, a_low, a_high, b_low, b_high):
        a = Interval(a_low, a_high)
        b = Interval(b_low, b_high)
        assert a.intersection(b) == b.intersection(a)
        assert a.intersects(b) == b.intersects(a)


# ----------------------------------------------------------------------
# Conflict table
# ----------------------------------------------------------------------
class TestConflictTableProperties:
    @_settings
    @given(box_sets())
    def test_defined_entries_iff_s_sticks_out(self, instance):
        subscription, candidates = instance
        table = ConflictTable(subscription, candidates)
        for row, candidate in enumerate(candidates):
            for attribute in range(SCHEMA.m):
                assert table.defined_low[row, attribute] == (
                    subscription.lows[attribute] < candidate.lows[attribute]
                )
                assert table.defined_high[row, attribute] == (
                    subscription.highs[attribute] > candidate.highs[attribute]
                )

    @_settings
    @given(box_sets())
    def test_corollary_one_rows_really_cover(self, instance):
        subscription, candidates = instance
        table = ConflictTable(subscription, candidates)
        for row in table.covering_rows():
            assert candidates[row].covers(subscription)

    @_settings
    @given(box_sets())
    def test_entry_regions_are_outside_candidate(self, instance):
        subscription, candidates = instance
        table = ConflictTable(subscription, candidates)
        for entry in table.iter_defined_entries():
            region = table.entry_region(entry.row, entry.attribute, entry.side)
            assert not region.is_empty
            candidate_interval = candidates[entry.row].interval(entry.attribute)
            assert not region.intersects(candidate_interval)

    @_settings
    @given(box_sets())
    def test_conflict_free_counts_match_bruteforce(self, instance):
        subscription, candidates = instance
        table = ConflictTable(subscription, candidates)
        counts = table.conflict_free_counts()
        expected = np.zeros(table.k, dtype=int)
        entries = list(table.iter_defined_entries())
        for entry in entries:
            conflicting = any(
                table.entries_conflict(entry, other)
                for other in entries
                if other.row != entry.row
            )
            if not conflicting:
                expected[entry.row] += 1
        assert counts.tolist() == expected.tolist()


# ----------------------------------------------------------------------
# Fast decisions, MCS, RSPC
# ----------------------------------------------------------------------
class TestAlgorithmProperties:
    @_settings
    @given(box_sets())
    def test_pairwise_fast_decision_sound(self, instance):
        subscription, candidates = instance
        table = ConflictTable(subscription, candidates)
        decision = detect_pairwise_cover(table)
        if decision is not None:
            assert candidates[decision.covering_row].covers(subscription)

    @_settings
    @given(box_sets())
    def test_polyhedron_witness_decision_sound(self, instance):
        subscription, candidates = instance
        table = ConflictTable(subscription, candidates)
        decision = detect_polyhedron_witness(table)
        if decision is not None:
            assert exact_group_cover(subscription, candidates) is False

    @_settings
    @given(box_sets())
    def test_mcs_preserves_the_answer(self, instance):
        subscription, candidates = instance
        table = ConflictTable(subscription, candidates)
        reduction = minimized_cover_set(table)
        assert exact_group_cover(subscription, candidates) == exact_group_cover(
            subscription, list(reduction.kept)
        )

    @_settings
    @given(box_sets())
    def test_rspc_no_is_always_correct(self, instance):
        subscription, candidates = instance
        estimate = estimate_smallest_witness(ConflictTable(subscription, candidates))
        result = run_rspc(
            subscription,
            candidates,
            rho_w=estimate.rho_w,
            delta=1e-3,
            rng=0,
            max_iterations=200,
        )
        if not result.covered:
            assert exact_group_cover(subscription, candidates) is False
            assert subscription.contains_point(result.witness_point)

    @_settings
    @given(box_sets())
    def test_full_checker_never_rejects_covered_instances(self, instance):
        subscription, candidates = instance
        checker = SubsumptionChecker(delta=1e-4, max_iterations=300, rng=1)
        result = checker.check(subscription, candidates)
        truth = exact_group_cover(subscription, candidates)
        if truth:
            assert result.covered
        if not result.covered:
            assert truth is False

    @_settings
    @given(box_sets())
    def test_pairwise_baseline_weaker_than_group_oracle(self, instance):
        subscription, candidates = instance
        pairwise = PairwiseCoverageChecker.check(subscription, candidates)
        if pairwise.covered:
            assert exact_group_cover(subscription, candidates)

    @_settings
    @given(box_sets())
    def test_uncovered_region_is_disjoint_from_candidates(self, instance):
        subscription, candidates = instance
        for piece in uncovered_region(subscription, candidates):
            assert subscription.covers(piece)
            for candidate in candidates:
                assert not candidate.intersects(piece)


# ----------------------------------------------------------------------
# Error model (Eq. 1)
# ----------------------------------------------------------------------
class TestErrorModelProperties:
    @_settings
    @given(
        st.floats(min_value=1e-6, max_value=0.999),
        st.floats(min_value=1e-9, max_value=0.5),
    )
    def test_required_iterations_achieves_delta(self, rho_w, delta):
        d = required_iterations(delta, rho_w)
        assume(math.isfinite(d))
        assert error_probability(rho_w, d) <= delta * (1 + 1e-9)

    @_settings
    @given(
        st.floats(min_value=1e-6, max_value=0.999),
        st.integers(min_value=0, max_value=1000),
    )
    def test_error_probability_in_unit_interval(self, rho_w, iterations):
        value = error_probability(rho_w, iterations)
        assert 0.0 <= value <= 1.0
