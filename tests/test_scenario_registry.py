"""Tests for the scenario registry and the canonical catalog."""

import pytest

from repro.scenarios import (
    CANONICAL_TIERS,
    REGISTRY,
    ScenarioRegistry,
    ScenarioRunner,
    compile_scenario,
    get_scenario,
    scenario_names,
)
from repro.scenarios.spec import PhaseKind, PhaseSpec, ScenarioSpec


class TestRegistry:
    def test_register_get_round_trip(self):
        registry = ScenarioRegistry()

        @registry.register
        def tiny() -> ScenarioSpec:
            return ScenarioSpec(
                name="tiny",
                phases=[PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 1})],
            )

        assert "tiny" in registry
        assert registry.names() == ["tiny"]
        spec = registry.get("tiny")
        assert spec.name == "tiny"
        # every get() returns a fresh spec
        assert registry.get("tiny") is not spec

    def test_register_validates_at_registration_time(self):
        registry = ScenarioRegistry()
        with pytest.raises(TypeError, match="must return a ScenarioSpec"):
            registry.register(lambda: "not a spec")

    def test_register_rejects_duplicates(self):
        registry = ScenarioRegistry()

        def make():
            return ScenarioSpec(
                name="dup",
                phases=[PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 1})],
            )

        registry.register(make)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(make)

    def test_register_rejects_mismatched_name(self):
        registry = ScenarioRegistry()
        with pytest.raises(ValueError, match="does not match"):
            registry.register(
                lambda: ScenarioSpec(
                    name="actual",
                    phases=[PhaseSpec("r", PhaseKind.SUBSCRIBE_RAMP, {"count": 1})],
                ),
                name="expected",
            )

    def test_get_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="t0-smoke"):
            REGISTRY.get("no-such-scenario")


class TestCatalog:
    def test_canonical_tiers_are_registered(self):
        names = scenario_names()
        assert len(names) >= 6
        for name in CANONICAL_TIERS:
            assert name in names

    def test_tier_labels_cover_t0_to_t3(self):
        tiers = {get_scenario(name).tier for name in CANONICAL_TIERS}
        assert tiers == {"T0", "T1", "T2", "T3"}

    def test_t1_churn_actually_churns(self):
        spec = get_scenario("t1-churn")
        kinds = {phase.kind for phase in spec.phases}
        assert PhaseKind.SUBSCRIBE_RAMP in kinds
        assert PhaseKind.UNSUBSCRIBE_STORM in kinds

    def test_every_catalog_spec_compiles(self):
        for name in CANONICAL_TIERS:
            compiled = compile_scenario(get_scenario(name), seed=0)
            assert compiled.event_count > 0, name
            assert compiled.clients, name

    def test_register_get_run_round_trip(self):
        spec = get_scenario("t0-smoke")
        report = ScenarioRunner(spec, seed=11).run()
        assert report.scenario == "t0-smoke"
        assert report.event_count > 0
        assert [phase.name for phase in report.phases] == list(spec.phase_names)
