"""Unit tests for :mod:`repro.core.pairwise` (the classical baseline)."""

import pytest

from repro.core.pairwise import PairwiseCoverageChecker
from repro.model import Schema, Subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def box(schema, x1, x2, **kwargs):
    return Subscription.from_constraints(schema, {"x1": x1, "x2": x2}, **kwargs)


class TestStatelessCheck:
    def test_detects_single_coverer(self, schema):
        s = box(schema, (10, 20), (10, 20))
        candidates = [box(schema, (50, 60), (50, 60)), box(schema, (0, 30), (0, 30))]
        result = PairwiseCoverageChecker.check(s, candidates)
        assert result.covered
        assert result.covering is candidates[1]
        assert result.comparisons == 2

    def test_union_cover_is_not_detected(self, table3_subscription, table3_candidates):
        """The baseline's key weakness: it misses group-only covers."""
        result = PairwiseCoverageChecker.check(table3_subscription, table3_candidates)
        assert not result.covered

    def test_empty_candidate_set(self, schema):
        result = PairwiseCoverageChecker.check(box(schema, (0, 1), (0, 1)), [])
        assert not result.covered
        assert result.comparisons == 0


class TestIncrementalMaintenance:
    def test_covered_newcomer_not_added_to_active(self, schema):
        checker = PairwiseCoverageChecker()
        checker.add(box(schema, (0, 50), (0, 50), subscription_id="big"))
        result = checker.add(box(schema, (10, 20), (10, 20), subscription_id="small"))
        assert result.covered
        assert [s.id for s in checker.active] == ["big"]
        assert [s.id for s in checker.covered] == ["small"]
        assert checker.active_count == 1
        assert len(checker) == 2

    def test_newcomer_demotes_covered_existing(self, schema):
        checker = PairwiseCoverageChecker()
        checker.add(box(schema, (10, 20), (10, 20), subscription_id="small"))
        result = checker.add(box(schema, (0, 50), (0, 50), subscription_id="big"))
        assert not result.covered
        assert [s.id for s in checker.active] == ["big"]
        assert [s.id for s in checker.covered] == ["small"]

    def test_incomparable_subscriptions_all_stay_active(self, schema):
        checker = PairwiseCoverageChecker()
        checker.add(box(schema, (0, 20), (0, 20)))
        checker.add(box(schema, (30, 50), (30, 50)))
        checker.add(box(schema, (60, 80), (60, 80)))
        assert checker.active_count == 3

    def test_initial_iterable(self, schema):
        subs = [box(schema, (0, 50), (0, 50)), box(schema, (10, 20), (10, 20))]
        checker = PairwiseCoverageChecker(subs)
        assert checker.active_count == 1

    def test_remove(self, schema):
        checker = PairwiseCoverageChecker()
        checker.add(box(schema, (0, 50), (0, 50), subscription_id="a"))
        checker.add(box(schema, (10, 20), (10, 20), subscription_id="b"))
        assert checker.remove("b")
        assert not checker.remove("missing")
        assert len(checker) == 1

    def test_comparison_counter_accumulates(self, schema):
        checker = PairwiseCoverageChecker()
        checker.add(box(schema, (0, 10), (0, 10)))
        checker.add(box(schema, (20, 30), (20, 30)))
        checker.add(box(schema, (40, 50), (40, 50)))
        assert checker.comparisons > 0
