"""Unit tests for :mod:`repro.matching.cover_index`."""

import pytest

from repro.matching.cover_index import CoverForest
from repro.model import Publication, Schema, Subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


@pytest.fixture
def forest(schema):
    forest = CoverForest()
    root = Subscription.from_constraints(
        schema, {"x1": (0, 50), "x2": (0, 50)}, subscription_id="root"
    )
    child = Subscription.from_constraints(
        schema, {"x1": (10, 30), "x2": (10, 30)}, subscription_id="child"
    )
    grandchild = Subscription.from_constraints(
        schema, {"x1": (15, 20), "x2": (15, 20)}, subscription_id="grandchild"
    )
    forest.add_root(root)
    forest.add_covered(child, "root")
    forest.add_covered(grandchild, "child")
    return forest


class TestStructure:
    def test_membership_and_depth(self, forest):
        assert "root" in forest and "grandchild" in forest
        assert forest.depth("root") == 0
        assert forest.depth("child") == 1
        assert forest.depth("grandchild") == 2
        assert len(forest) == 3

    def test_depth_of_unknown_raises(self, forest):
        with pytest.raises(KeyError):
            forest.depth("ghost")

    def test_duplicate_insert_rejected(self, forest, schema):
        with pytest.raises(ValueError):
            forest.add_root(
                Subscription.from_constraints(schema, {}, subscription_id="root")
            )

    def test_unknown_coverer_rejected(self, forest, schema):
        orphan = Subscription.from_constraints(schema, {}, subscription_id="orphan")
        with pytest.raises(KeyError):
            forest.add_covered(orphan, "ghost")

    def test_roots_view(self, forest):
        assert [s.id for s in forest.roots] == ["root"]


class TestReparentAndRemove:
    def test_reparent_moves_whole_subtree(self, forest, schema):
        big = Subscription.from_constraints(
            schema, {"x1": (0, 90), "x2": (0, 90)}, subscription_id="big"
        )
        forest.add_root(big)
        forest.reparent("root", "big")
        assert forest.depth("root") == 1
        assert forest.depth("grandchild") == 3

    def test_reparent_to_root(self, forest):
        forest.reparent("child", None)
        assert forest.depth("child") == 0
        assert forest.depth("grandchild") == 1
        assert {s.id for s in forest.roots} == {"root", "child"}

    def test_reparent_unknown_raises(self, forest):
        with pytest.raises(KeyError):
            forest.reparent("ghost", "root")
        with pytest.raises(KeyError):
            forest.reparent("child", "ghost")

    def test_remove_returns_direct_children(self, forest):
        orphans = forest.remove("child")
        assert [s.id for s in orphans] == ["grandchild"]
        assert "child" not in forest
        assert "grandchild" not in forest

    def test_remove_unknown_is_noop(self, forest):
        assert forest.remove("ghost") == ()


class TestMatching:
    def test_match_descends_only_into_matching_subtrees(self, forest, schema):
        inside_all = Publication.from_values(schema, {"x1": 18, "x2": 18})
        matched, tests = forest.match(inside_all)
        assert {s.id for s in matched} == {"root", "child", "grandchild"}
        assert tests == 3

        only_root = Publication.from_values(schema, {"x1": 40, "x2": 40})
        matched, tests = forest.match(only_root)
        assert {s.id for s in matched} == {"root"}
        assert tests == 2  # root + child; grandchild pruned

        nothing = Publication.from_values(schema, {"x1": 90, "x2": 90})
        matched, tests = forest.match(nothing)
        assert matched == []
        assert tests == 1

    def test_match_below_given_roots(self, forest, schema):
        publication = Publication.from_values(schema, {"x1": 18, "x2": 18})
        matched, tests = forest.match_below(publication, ["root"])
        assert {s.id for s in matched} == {"child", "grandchild"}
        assert tests == 2

    def test_match_below_ignores_unknown_roots(self, forest, schema):
        publication = Publication.from_values(schema, {"x1": 18, "x2": 18})
        matched, tests = forest.match_below(publication, ["ghost"])
        assert matched == [] and tests == 0
