"""Tests for the broker/network hardening fixes.

* the per-broker publication dedup memory is bounded (no unbounded growth
  over long publication streams);
* the network's global delivery oracle is keyed by subscription id and
  matches through a matcher backend (no O(n) rebuild per unsubscription).
"""

import pytest

from repro.broker import Broker, BrokerNetwork, CoveringPolicy, line_topology
from repro.broker.messages import PublicationMessage, SubscriptionMessage
from repro.model import Publication, Schema, Subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def whole_space(schema, sid="all"):
    return Subscription.whole_space(schema, subscription_id=sid)


class TestDedupWindowBound:
    def test_seen_set_is_bounded_over_a_long_stream(self, schema):
        broker = Broker("B1", dedup_window=16, policy=CoveringPolicy.NONE)
        for index in range(500):
            message = PublicationMessage(
                sender=None,
                recipient="B1",
                publication=Publication.from_values(
                    schema, {"x1": 1, "x2": 1}, publication_id=f"p{index}"
                ),
            )
            broker.handle_publication(message)
            assert len(broker._seen_publications) <= 16
        assert len(broker._seen_publications) == 16

    def test_duplicates_inside_the_window_are_suppressed(self, schema):
        broker = Broker("B1", dedup_window=16, policy=CoveringPolicy.NONE)
        broker.attach_subscriber("sub")
        broker.handle_subscription(
            SubscriptionMessage(
                sender=None,
                recipient="B1",
                subscription=whole_space(schema).replace(subscriber="sub"),
                origin="B1",
            )
        )
        publication = Publication.from_values(
            schema, {"x1": 1, "x2": 1}, publication_id="dup"
        )
        message = PublicationMessage(
            sender=None, recipient="B1", publication=publication
        )
        broker.handle_publication(message)
        broker.handle_publication(message)
        assert len(broker.delivered) == 1

    def test_network_threads_the_window_through(self, schema):
        network = BrokerNetwork(
            line_topology(2), policy=CoveringPolicy.NONE, dedup_window=8
        )
        assert all(
            broker.dedup_window == 8 for broker in network.brokers.values()
        )
        network.attach_client("sub", "B1")
        network.attach_client("pub", "B2")
        network.subscribe("sub", whole_space(schema))
        for index in range(100):
            network.publish(
                "pub",
                Publication.from_values(
                    schema, {"x1": 1, "x2": 1}, publication_id=f"p{index}"
                ),
            )
        assert network.metrics.missed == []
        for broker in network.brokers.values():
            assert len(broker._seen_publications) <= 8

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            Broker("B1", dedup_window=0)

    def test_burst_larger_than_window_safe_on_cyclic_topology(self, schema):
        """publish_batch chunks its drains at the dedup window, so even a
        burst far larger than the window cannot evict an id while its
        duplicate is still in flight around a cycle (no double delivery)."""
        from repro.broker import grid_topology

        network = BrokerNetwork(
            grid_topology(2, 2), policy=CoveringPolicy.NONE, dedup_window=3
        )
        network.attach_client("sub", "B1")
        network.attach_client("pub", "B4")
        network.subscribe("sub", whole_space(schema))
        burst = [
            Publication.from_values(
                schema, {"x1": 1, "x2": 1}, publication_id=f"p{index}"
            )
            for index in range(20)
        ]
        delivered = network.publish_batch("pub", burst)
        assert len(delivered) == 20  # exactly once each, no duplicates
        assert network.metrics.notifications == 20
        assert network.metrics.expected_notifications == 20
        assert network.metrics.missed == []
        assert network.metrics.delivery_ratio == 1.0


class TestOracleById:
    def _network(self, backend="linear"):
        network = BrokerNetwork(
            line_topology(3), policy=CoveringPolicy.NONE, matcher_backend=backend
        )
        network.attach_client("sub", "B1")
        network.attach_client("pub", "B3")
        return network

    def box(self, schema, lo, hi, sid):
        return Subscription.from_constraints(
            schema, {"x1": (lo, hi), "x2": (lo, hi)}, subscription_id=sid
        )

    def test_oracle_tracks_subscribe_and_unsubscribe(self, schema):
        network = self._network()
        for index in range(10):
            network.subscribe("sub", self.box(schema, 0, 50, f"s{index}"))
        assert len(network._all_subscriptions) == 10
        assert len(network._oracle) == 10
        for index in range(0, 10, 2):
            network.unsubscribe("sub", f"s{index}")
        assert sorted(network._all_subscriptions) == [
            f"s{index}" for index in range(1, 10, 2)
        ]
        assert len(network._oracle) == 5

    def test_unsubscribing_unknown_id_is_a_noop(self, schema):
        network = self._network()
        network.subscribe("sub", self.box(schema, 0, 50, "known"))
        network.unsubscribe("sub", "never-existed")
        assert len(network._all_subscriptions) == 1

    def test_duplicate_subscription_id_kept_once(self, schema):
        network = self._network()
        subscription = self.box(schema, 0, 50, "dup")
        network.subscribe("sub", subscription)
        network.subscribe("sub", subscription)
        assert len(network._all_subscriptions) == 1
        delivered = network.publish(
            "pub", Publication.from_values(schema, {"x1": 10, "x2": 10})
        )
        assert len(delivered) == 1
        assert network.metrics.missed == []

    @pytest.mark.parametrize("backend", ["linear", "counting", "selectivity"])
    def test_expected_notifications_agree_across_backends(self, schema, backend):
        network = self._network(backend)
        bounds = [(0, 20), (10, 60), (40, 90), (70, 100)]
        for index, (lo, hi) in enumerate(bounds):
            network.subscribe("sub", self.box(schema, lo, hi, f"s{index}"))
        network.unsubscribe("sub", "s1")
        publication = Publication.from_values(schema, {"x1": 15, "x2": 15})
        expected = network._expected_notifications(publication)
        # Only s0 (0-20) still matches; s1 (10-60) unsubscribed.
        assert [record.subscription_id for record in expected] == ["s0"]
        delivered = network.publish("pub", publication)
        assert [record.subscription_id for record in delivered] == ["s0"]
        assert network.metrics.missed == []

    def test_storm_keeps_oracle_and_delivery_consistent(self, schema):
        network = self._network()
        for index in range(30):
            network.subscribe("sub", self.box(schema, index, index + 40, f"s{index}"))
        for index in range(0, 30, 3):
            network.unsubscribe("sub", f"s{index}")
        for value in (5, 25, 45, 65, 85):
            network.publish(
                "pub",
                Publication.from_values(
                    schema, {"x1": value, "x2": value}, publication_id=f"p{value}"
                ),
            )
        assert network.metrics.missed == []
        assert network.metrics.delivery_ratio == 1.0
