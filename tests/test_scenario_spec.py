"""Tests for scenario specs, phases, topologies and metrics snapshots."""

import pytest

from repro.broker.metrics import MetricsSnapshot, NetworkMetrics
from repro.broker.network import BrokerNetwork
from repro.scenarios.spec import PhaseKind, PhaseSpec, ScenarioSpec, TopologySpec


class TestPhaseSpec:
    def test_round_trip(self):
        phase = PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 10})
        assert PhaseSpec.from_dict(phase.to_dict()) == phase

    def test_accepts_string_kind(self):
        phase = PhaseSpec("burst", "publish_burst", {"count": 5})
        assert phase.kind is PhaseKind.PUBLISH_BURST

    def test_rejects_unknown_parameters(self):
        with pytest.raises(ValueError, match="does not accept"):
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"volume": 10})

    def test_steady_state_rejects_degenerate_weights(self):
        with pytest.raises(ValueError, match="positive sum"):
            PhaseSpec(
                "steady",
                PhaseKind.STEADY_STATE,
                {"ops": 10, "publish_weight": 0, "subscribe_weight": 0,
                 "unsubscribe_weight": 0},
            )
        with pytest.raises(ValueError, match="non-negative"):
            PhaseSpec(
                "steady", PhaseKind.STEADY_STATE, {"publish_weight": -1}
            )

    def test_storm_needs_exactly_one_sizing(self):
        with pytest.raises(ValueError, match="exactly one"):
            PhaseSpec("storm", PhaseKind.UNSUBSCRIBE_STORM, {})
        with pytest.raises(ValueError, match="exactly one"):
            PhaseSpec(
                "storm",
                PhaseKind.UNSUBSCRIBE_STORM,
                {"fraction": 0.5, "count": 3},
            )


class TestTopologySpec:
    def test_line_and_star_edge_counts(self):
        assert len(TopologySpec(kind="line", size=5).build()) == 4
        assert len(TopologySpec(kind="star", size=5).build()) == 4

    def test_grid_broker_count(self):
        topology = TopologySpec(kind="grid", rows=2, columns=3)
        assert topology.broker_count == 6
        edges = topology.build()
        brokers = {b for edge in edges for b in edge}
        assert len(brokers) == 6

    def test_random_tree_is_seed_deterministic(self):
        topology = TopologySpec(kind="random-tree", size=8)
        assert topology.build(rng=5) == topology.build(rng=5)

    def test_round_trip(self):
        for topology in (
            TopologySpec(kind="line", size=4),
            TopologySpec(kind="grid", rows=2, columns=2),
        ):
            assert TopologySpec.from_dict(topology.to_dict()) == topology

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown topology"):
            TopologySpec(kind="torus", size=4)


class TestScenarioSpec:
    def _spec(self, **overrides):
        base = dict(
            name="test",
            phases=[PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 2})],
        )
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_round_trip(self):
        spec = self._spec(
            tier="T1",
            workload="grid",
            topology=TopologySpec(kind="star", size=4),
            policy="pairwise",
            tags=("a", "b"),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_empty_timeline(self):
        with pytest.raises(ValueError, match="no phases"):
            self._spec(phases=[])

    def test_rejects_duplicate_phase_names(self):
        with pytest.raises(ValueError, match="duplicate phase"):
            self._spec(
                phases=[
                    PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 1}),
                    PhaseSpec("ramp", PhaseKind.PUBLISH_BURST, {"count": 1}),
                ]
            )


class TestMetricsSnapshot:
    def test_diff_reports_counter_deltas(self):
        metrics = NetworkMetrics()
        metrics.publication_messages = 3
        metrics.notifications = 2
        metrics.expected_notifications = 2
        before = metrics.snapshot()
        metrics.publication_messages = 10
        metrics.notifications = 5
        metrics.expected_notifications = 6
        delta = metrics.diff(before)
        assert delta["publication_messages"] == 7
        assert delta["notifications"] == 3
        assert delta["expected_notifications"] == 4
        assert delta["missed_notifications"] == 1
        assert delta["delivery_ratio"] == pytest.approx(0.75)

    def test_diff_with_nothing_expected_reports_full_delivery(self):
        empty = MetricsSnapshot()
        assert empty.diff(MetricsSnapshot())["delivery_ratio"] == 1.0

    def test_snapshot_is_immutable_copy(self):
        metrics = NetworkMetrics()
        snapshot = metrics.snapshot()
        metrics.notifications = 99
        assert snapshot.notifications == 0
        with pytest.raises(AttributeError):
            snapshot.notifications = 1

    def test_network_mark_phase_records_snapshots(self):
        network = BrokerNetwork([("B1", "B2")])
        first = network.mark_phase("ramp")
        second = network.mark_phase("burst")
        assert [name for name, _ in network.phase_marks] == ["ramp", "burst"]
        assert network.phase_marks[0][1] is first
        assert network.phase_marks[1][1] is second
