"""Unit tests for the counting and selectivity matching indexes."""

import numpy as np
import pytest

from repro.matching.counting_index import CountingIndex
from repro.matching.selectivity_index import SelectivityIndex
from repro.model import Publication, Schema, Subscription
from repro.model.errors import ValidationError
from repro.workloads.generators import random_publication, random_subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(3, 0, 100)


@pytest.fixture
def subscriptions(schema):
    return [
        Subscription.from_constraints(
            schema, {"x1": (0, 50), "x2": (0, 50)}, subscription_id="a"
        ),
        Subscription.from_constraints(
            schema, {"x1": (40, 90), "x3": (10, 20)}, subscription_id="b"
        ),
        Subscription.from_constraints(schema, {}, subscription_id="everything"),
    ]


@pytest.mark.parametrize("index_class", [CountingIndex, SelectivityIndex])
class TestIndexes:
    def test_match_results(self, index_class, schema, subscriptions):
        index = index_class(schema)
        index.add_all(subscriptions)
        publication = Publication.from_values(schema, {"x1": 45, "x2": 10, "x3": 15})
        matched_ids = {s.id for s in index.match(publication)}
        assert matched_ids == {"a", "b", "everything"}

    def test_match_empty_index(self, index_class, schema):
        index = index_class(schema)
        publication = Publication.from_values(schema, {"x1": 1, "x2": 1, "x3": 1})
        assert index.match(publication) == []

    def test_no_match(self, index_class, schema, subscriptions):
        index = index_class(schema)
        index.add_all(subscriptions[:2])
        publication = Publication.from_values(schema, {"x1": 99, "x2": 99, "x3": 99})
        assert index.match(publication) == []

    def test_remove(self, index_class, schema, subscriptions):
        index = index_class(schema)
        index.add_all(subscriptions)
        assert index.remove("a")
        assert not index.remove("missing")
        publication = Publication.from_values(schema, {"x1": 45, "x2": 10, "x3": 15})
        assert {s.id for s in index.match(publication)} == {"b", "everything"}
        assert len(index) == 2

    def test_schema_mismatch_rejected(self, index_class, schema):
        index = index_class(schema)
        other = Schema.uniform_integer(2, 0, 10, name="other")
        with pytest.raises(ValidationError):
            index.add(Subscription.whole_space(other))
        with pytest.raises(ValidationError):
            index.match(Publication(other, [0, 0]))

    def test_agreement_with_bruteforce(self, index_class, schema):
        rng = np.random.default_rng(11)
        subscriptions = [random_subscription(schema, rng) for _ in range(50)]
        index = index_class(schema)
        index.add_all(subscriptions)
        for _ in range(50):
            publication = random_publication(schema, rng)
            expected = {s.id for s in subscriptions if s.matches(publication)}
            assert {s.id for s in index.match(publication)} == expected


class TestSelectivitySpecifics:
    def test_attribute_order_prefers_narrow_attributes(self, schema):
        index = SelectivityIndex(schema)
        index.add(
            Subscription.from_constraints(
                schema, {"x2": (10, 12)}  # x2 is by far the most selective
            )
        )
        index.add(Subscription.from_constraints(schema, {"x2": (40, 42)}))
        assert index.attribute_order[0] == "x2"


class TestCountingSpecifics:
    def test_match_count(self, schema, subscriptions):
        index = CountingIndex(schema)
        index.add_all(subscriptions)
        publication = Publication.from_values(schema, {"x1": 45, "x2": 10, "x3": 15})
        assert index.match_count(publication) == 3
