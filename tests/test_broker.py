"""Unit tests for :mod:`repro.broker.broker` and the routing table."""

import pytest

from repro.broker.broker import Broker
from repro.broker.messages import PublicationMessage, SubscriptionMessage
from repro.broker.routing import RouteEntry, RoutingTable, SourceKind
from repro.core.store import CoveringPolicyName
from repro.core.subsumption import SubsumptionChecker
from repro.model import Publication, Schema, Subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def box(schema, x1, x2, sid=None, subscriber=None):
    return Subscription.from_constraints(
        schema, {"x1": x1, "x2": x2}, subscription_id=sid, subscriber=subscriber
    )


class TestRoutingTable:
    def test_add_get_remove(self, schema):
        table = RoutingTable()
        entry = RouteEntry(
            box(schema, (0, 10), (0, 10), sid="s"),
            SourceKind.LOCAL,
            "alice",
            origin="B1",
        )
        assert table.add(entry)
        assert not table.add(entry)  # duplicates rejected
        assert "s" in table
        assert table.get("s").source_id == "alice"
        assert len(table) == 1
        assert table.remove("s") is entry
        assert table.remove("s") is None

    def test_matching_entries(self, schema):
        table = RoutingTable()
        table.add(
            RouteEntry(box(schema, (0, 10), (0, 10), sid="near"), SourceKind.LOCAL, "a", "B1")
        )
        table.add(
            RouteEntry(box(schema, (50, 60), (50, 60), sid="far"), SourceKind.NEIGHBOR, "B2", "B2")
        )
        publication = Publication.from_values(schema, {"x1": 5, "x2": 5})
        assert [e.subscription.id for e in table.matching_entries(publication)] == ["near"]
        assert len(table.subscriptions()) == 2
        assert len(table.entries()) == 2


class TestBrokerSubscriptionHandling:
    def _local_subscription_message(self, broker_id, subscription):
        return SubscriptionMessage(
            sender=None, recipient=broker_id, subscription=subscription, origin=broker_id
        )

    def test_local_subscription_forwarded_to_all_neighbors(self, schema):
        broker = Broker("B1", neighbors=["B2", "B3"], policy=CoveringPolicyName.NONE)
        outgoing, decisions = broker.handle_subscription(
            self._local_subscription_message("B1", box(schema, (0, 10), (0, 10)))
        )
        assert len(decisions) == 2
        assert all(decision.forwarded for decision in decisions)
        assert {m.recipient for m in outgoing} == {"B2", "B3"}
        assert all(m.sender == "B1" for m in outgoing)
        assert broker.table_size == 1

    def test_remote_subscription_not_sent_back_to_sender(self, schema):
        broker = Broker("B1", neighbors=["B2", "B3"], policy=CoveringPolicyName.NONE)
        message = SubscriptionMessage(
            sender="B2",
            recipient="B1",
            subscription=box(schema, (0, 10), (0, 10)),
            origin="B9",
            hops=3,
        )
        outgoing, decisions = broker.handle_subscription(message)
        assert {m.recipient for m in outgoing} == {"B3"}
        assert {decision.neighbor for decision in decisions} == {"B3"}
        assert outgoing[0].hops == 4
        assert outgoing[0].origin == "B9"

    def test_duplicate_subscription_ignored(self, schema):
        broker = Broker("B1", neighbors=["B2"], policy=CoveringPolicyName.NONE)
        subscription = box(schema, (0, 10), (0, 10))
        broker.handle_subscription(self._local_subscription_message("B1", subscription))
        outgoing, decisions = broker.handle_subscription(
            self._local_subscription_message("B1", subscription)
        )
        assert outgoing == [] and decisions == []
        assert broker.table_size == 1

    def test_pairwise_covering_suppresses_forwarding(self, schema):
        broker = Broker("B1", neighbors=["B2"], policy=CoveringPolicyName.PAIRWISE)
        broker.handle_subscription(
            self._local_subscription_message("B1", box(schema, (0, 50), (0, 50)))
        )
        outgoing, decisions = broker.handle_subscription(
            self._local_subscription_message("B1", box(schema, (10, 20), (10, 20)))
        )
        assert len(decisions) == 1
        assert not decisions[0].forwarded
        assert outgoing == []
        # The covered subscription is still stored for local matching.
        assert broker.table_size == 2

    def test_covering_is_per_link(self, schema):
        """A subscription received from a neighbour does not suppress
        forwarding back toward directions that never saw the coverer."""
        broker = Broker("B4", neighbors=["B3", "B5"], policy=CoveringPolicyName.PAIRWISE)
        # s1 arrives from B3 and is forwarded to B5.
        broker.handle_subscription(
            SubscriptionMessage(
                sender="B3",
                recipient="B4",
                subscription=box(schema, (0, 60), (0, 60), sid="s1"),
                origin="B1",
            )
        )
        # s2 (covered by s1) arrives from B5: toward B3 nothing covers it yet
        # (s1 was never sent to B3), so it must be forwarded to B3 only.
        outgoing, decisions = broker.handle_subscription(
            SubscriptionMessage(
                sender="B5",
                recipient="B4",
                subscription=box(schema, (10, 20), (10, 20), sid="s2"),
                origin="B6",
            )
        )
        assert {m.recipient for m in outgoing} == {"B3"}
        by_neighbor = {decision.neighbor: decision for decision in decisions}
        assert by_neighbor["B3"].forwarded

    def test_group_covering_suppresses_union_covered(
        self, table3_subscription, table3_candidates
    ):
        broker = Broker(
            "B1",
            neighbors=["B2"],
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-6, rng=1),
        )
        for candidate in table3_candidates:
            broker.handle_subscription(
                self._local_subscription_message("B1", candidate)
            )
        outgoing, decisions = broker.handle_subscription(
            self._local_subscription_message("B1", table3_subscription)
        )
        assert len(decisions) == 1
        assert not decisions[0].forwarded
        assert decisions[0].rspc_iterations > 0
        assert outgoing == []


class TestBrokerPublicationHandling:
    def test_delivery_to_local_subscriber_and_reverse_path(self, schema):
        broker = Broker("B2", neighbors=["B1", "B3"], policy=CoveringPolicyName.NONE)
        # Subscription from a local client.
        broker.handle_subscription(
            SubscriptionMessage(
                sender=None,
                recipient="B2",
                subscription=box(schema, (0, 10), (0, 10), subscriber="alice"),
                origin="B2",
            )
        )
        # Subscription learnt from neighbour B3.
        broker.handle_subscription(
            SubscriptionMessage(
                sender="B3",
                recipient="B2",
                subscription=box(schema, (0, 20), (0, 20), sid="remote"),
                origin="B4",
            )
        )
        publication = Publication.from_values(schema, {"x1": 5, "x2": 5})
        outgoing = broker.handle_publication(
            PublicationMessage(
                sender="B1", recipient="B2", publication=publication, origin="B1"
            )
        )
        # Local delivery recorded, publication forwarded toward B3 only.
        assert len(broker.delivered) == 1
        assert broker.delivered[0].subscriber == "alice"
        assert {m.recipient for m in outgoing} == {"B3"}

    def test_duplicate_publication_ignored(self, schema):
        broker = Broker("B1", neighbors=["B2"], policy=CoveringPolicyName.NONE)
        broker.handle_subscription(
            SubscriptionMessage(
                sender="B2",
                recipient="B1",
                subscription=box(schema, (0, 20), (0, 20)),
                origin="B2",
            )
        )
        publication = Publication.from_values(schema, {"x1": 5, "x2": 5})
        message = PublicationMessage(
            sender=None, recipient="B1", publication=publication, origin="B1"
        )
        first = broker.handle_publication(message)
        second = broker.handle_publication(message)
        assert len(first) == 1
        assert second == []

    def test_publication_not_returned_to_sender(self, schema):
        broker = Broker("B1", neighbors=["B2"], policy=CoveringPolicyName.NONE)
        broker.handle_subscription(
            SubscriptionMessage(
                sender="B2",
                recipient="B1",
                subscription=box(schema, (0, 20), (0, 20)),
                origin="B2",
            )
        )
        publication = Publication.from_values(schema, {"x1": 5, "x2": 5})
        outgoing = broker.handle_publication(
            PublicationMessage(
                sender="B2", recipient="B1", publication=publication, origin="B2"
            )
        )
        assert outgoing == []

    def test_connect_and_attach(self):
        broker = Broker("B1")
        broker.connect("B2")
        broker.connect("B2")
        broker.connect("B1")
        assert broker.neighbors == ["B2"]
        broker.attach_subscriber("alice")
        assert "alice" in broker.local_subscribers
