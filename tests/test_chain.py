"""Unit tests for :mod:`repro.broker.chain` (Proposition 5 / Eq. 2)."""

import pytest

from repro.broker.chain import ChainModel, simulate_chain_delivery
from repro.core.error_model import chain_delivery_probability, error_probability


class TestChainModel:
    def test_per_decision_error_is_equation_one(self):
        model = ChainModel(rho=0.1, rho_w=0.05, d=50, brokers=8)
        assert model.per_decision_error == pytest.approx(error_probability(0.05, 50))

    def test_delivery_probability_matches_closed_form(self):
        model = ChainModel(rho=0.2, rho_w=0.1, d=20, brokers=5)
        expected = chain_delivery_probability(
            0.2, error_probability(0.1, 20), 5
        )
        assert model.delivery_probability() == pytest.approx(expected)

    def test_sweep_chain_lengths_is_monotone(self):
        model = ChainModel(rho=0.1, rho_w=0.05, d=100, brokers=1)
        values = model.sweep_chain_lengths([1, 2, 4, 8, 16])
        assert values == sorted(values)
        assert values[0] == pytest.approx(0.1)

    def test_simulation_close_to_analytic(self):
        model = ChainModel(rho=0.25, rho_w=0.02, d=100, brokers=6)
        analytic = model.delivery_probability()
        simulated = model.simulate(runs=20_000, rng=17)
        assert simulated == pytest.approx(analytic, abs=0.02)

    def test_simulation_with_perfect_decisions(self):
        # With d so large the error is ~0, the subscription always propagates
        # and a long chain almost surely finds the publication.
        model = ChainModel(rho=0.3, rho_w=0.5, d=200, brokers=40)
        assert model.simulate(runs=5_000, rng=3) == pytest.approx(1.0, abs=0.01)


class TestSimulateChainDelivery:
    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_chain_delivery(0.5, 0.5, brokers=0)
        with pytest.raises(ValueError):
            simulate_chain_delivery(0.5, 0.5, brokers=3, runs=0)
        with pytest.raises(ValueError):
            simulate_chain_delivery(1.5, 0.5, brokers=3)

    def test_single_broker_probability_is_rho(self):
        estimate = simulate_chain_delivery(0.4, 0.9, brokers=1, runs=20_000, rng=11)
        assert estimate == pytest.approx(0.4, abs=0.02)

    def test_worse_decisions_lose_more_publications(self):
        good = simulate_chain_delivery(0.1, 0.0, brokers=10, runs=10_000, rng=5)
        bad = simulate_chain_delivery(0.1, 0.9, brokers=10, runs=10_000, rng=5)
        assert good > bad

    def test_reproducible_with_seed(self):
        a = simulate_chain_delivery(0.2, 0.1, brokers=5, runs=1_000, rng=42)
        b = simulate_chain_delivery(0.2, 0.1, brokers=5, runs=1_000, rng=42)
        assert a == b
