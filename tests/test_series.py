"""Unit tests for the experiment result containers."""

import math

import pytest

from repro.experiments.series import ResultTable, Series


class TestSeries:
    def test_append_and_len(self):
        series = Series("demo")
        series.append(1)
        series.append(2.5)
        assert len(series) == 2
        assert list(series) == [1.0, 2.5]


class TestResultTable:
    @pytest.fixture
    def table(self):
        table = ResultTable(title="Demo", x_label="k", notes="note")
        table.add_row(10, {"a": 1.0, "b": 2.0})
        table.add_row(20, {"a": 3.0, "b": 4.0})
        return table

    def test_add_row_and_column(self, table):
        assert table.x_values == [10.0, 20.0]
        assert table.column("a") == [1.0, 3.0]
        assert table.column("b") == [2.0, 4.0]

    def test_add_series_idempotent(self, table):
        series = table.add_series("a")
        assert series is table.series["a"]

    def test_render_contains_everything(self, table):
        text = table.render()
        assert "Demo" in text
        assert "note" in text
        assert "k" in text and "a" in text and "b" in text
        assert "10" in text and "4" in text

    def test_render_handles_nan_and_missing(self):
        table = ResultTable(title="t", x_label="x")
        table.add_row(1, {"a": float("nan")})
        table.add_row(2, {"a": 5.0, "b": 1.0})
        text = table.render()
        assert "-" in text

    def test_to_csv(self, table):
        csv = table.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "k,a,b"
        assert len(lines) == 3

    def test_str_is_render(self, table):
        assert str(table) == table.render()

    def test_empty_table_renders(self):
        table = ResultTable(title="empty", x_label="x")
        table.add_series("only")
        assert "empty" in table.render()
