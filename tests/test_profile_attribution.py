"""Gap attribution in ``benchmarks/profile_network.py`` stays within 100%.

The profiler explains the engine-vs-network wall-clock gap using the
instrumented stage self-times.  Because the network backend's stages
subsume work the engine backend also performs, the attribution subtracts
the engine's instrumented time; this suite pins the resulting invariants
(fraction within [0, 1], stage shares summing to at most 100%) on a real
seeded run so a regression to double counting fails loudly.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_PROFILER_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "profile_network.py"
)


def _load_profiler():
    spec = importlib.util.spec_from_file_location(
        "profile_network", _PROFILER_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("profile_network", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def attribution():
    """One profiled t1-churn run per backend, attributed."""
    profiler = _load_profiler()
    engine_report, engine_probe = profiler.profile_backend(
        "t1-churn", seed=7, backend="engine"
    )
    network_report, network_probe = profiler.profile_backend(
        "t1-churn", seed=7, backend="network"
    )
    return profiler.attribute_gap(
        network_report, network_probe, engine_report, engine_probe
    )


class TestGapAttribution:
    def test_fraction_within_unit_interval(self, attribution):
        fraction = attribution["gap_attributed_fraction"]
        assert 0.0 <= fraction <= 1.0, (
            "gap attribution double-counts work shared with the engine "
            f"backend: fraction={fraction}"
        )

    def test_attributed_seconds_bounded_by_gap(self, attribution):
        assert attribution["gap_attributed_seconds"] >= 0.0
        if attribution["wall_gap_seconds"] > 0:
            assert (
                attribution["gap_attributed_seconds"]
                <= attribution["wall_gap_seconds"]
            )

    def test_attribution_is_net_of_engine_time(self, attribution):
        expected = max(
            attribution["network_instrumented_seconds"]
            - attribution["engine_instrumented_seconds"],
            0.0,
        )
        assert attribution["gap_attributed_seconds"] == pytest.approx(
            expected, abs=1e-6
        )

    def test_stage_shares_sum_to_at_most_one(self, attribution):
        shares = [
            entry["share_of_network_time"]
            for entry in attribution["top_costs"]
        ]
        assert all(0.0 <= share <= 1.0 for share in shares)
        # rounding of individual shares can add at most 5e-5 each
        assert sum(shares) <= 1.0 + 5e-4

    def test_instrumented_time_within_walls(self, attribution):
        assert (
            attribution["network_instrumented_seconds"]
            <= attribution["network_wall_time"]
        )
        assert (
            attribution["engine_instrumented_seconds"]
            <= attribution["engine_wall_time"]
        )
