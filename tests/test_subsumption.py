"""Unit tests for :mod:`repro.core.subsumption` (the full pipeline)."""

import math

import numpy as np
import pytest

from repro.core.results import Answer, DecisionMethod
from repro.core.subsumption import SubsumptionChecker
from repro.model import Schema, Subscription


@pytest.fixture
def checker():
    return SubsumptionChecker(delta=1e-6, max_iterations=5_000, rng=1234)


class TestConfiguration:
    def test_rejects_invalid_delta(self):
        with pytest.raises(ValueError):
            SubsumptionChecker(delta=0.0)
        with pytest.raises(ValueError):
            SubsumptionChecker(delta=1.5)

    def test_rejects_invalid_max_iterations(self):
        with pytest.raises(ValueError):
            SubsumptionChecker(max_iterations=0)


class TestVerdicts:
    def test_empty_candidate_set(self, checker, table3_subscription):
        result = checker.check(table3_subscription, [])
        assert result.answer is Answer.NOT_COVERED
        assert result.method is DecisionMethod.EMPTY_CANDIDATE_SET
        assert not result.covered
        assert result.certain

    def test_pairwise_cover_short_circuit(self, checker, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (10, 20), "x2": (10, 20)})
        coverer = Subscription.from_constraints(schema_2d, {"x1": (0, 30), "x2": (0, 30)})
        result = checker.check(s, [coverer])
        assert result.answer is Answer.COVERED
        assert result.method is DecisionMethod.PAIRWISE_COVER
        assert result.covering_row == 0
        assert result.iterations_performed == 0
        assert result.certain and result.covered

    def test_group_cover_probabilistic_yes(
        self, checker, table3_subscription, table3_candidates
    ):
        result = checker.check(table3_subscription, table3_candidates)
        assert result.answer is Answer.PROBABLY_COVERED
        assert result.method is DecisionMethod.RSPC_EXHAUSTED
        assert result.covered and not result.certain
        assert result.is_probabilistic
        assert result.error_bound <= 1e-6
        assert result.rho_w == pytest.approx(40.0 / 164.0)
        assert result.iterations_performed == result.theoretical_iterations

    def test_non_cover_witness_found(
        self, checker, table6_subscription, table6_candidates
    ):
        result = checker.check(table6_subscription, table6_candidates)
        assert result.answer is Answer.NOT_COVERED
        assert result.certain
        assert result.method in (
            DecisionMethod.POINT_WITNESS,
            DecisionMethod.POLYHEDRON_WITNESS,
            DecisionMethod.EMPTY_MCS,
        )
        if result.witness_point is not None:
            assert table6_subscription.contains_point(result.witness_point)
            assert not any(
                c.contains_point(result.witness_point) for c in table6_candidates
            )

    def test_disjoint_candidates_empty_mcs(self, checker, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 10), "x2": (0, 10)})
        far = Subscription.from_constraints(
            schema_2d, {"x1": (100, 200), "x2": (100, 200)}
        )
        result = checker.check(s, [far])
        assert result.answer is Answer.NOT_COVERED
        assert result.method in (
            DecisionMethod.EMPTY_MCS,
            DecisionMethod.POLYHEDRON_WITNESS,
        )
        assert result.iterations_performed == 0

    def test_result_summary_is_readable(
        self, checker, table3_subscription, table3_candidates
    ):
        result = checker.check(table3_subscription, table3_candidates)
        text = result.summary()
        assert "probably_covered" in text
        assert "k=2" in text

    def test_reduction_ratio(self, checker, table3_subscription, table7_candidates):
        result = checker.check(table3_subscription, table7_candidates)
        assert result.original_set_size == 3
        assert result.reduced_set_size == 2
        assert result.reduction_ratio == pytest.approx(1 / 3)


class TestStageToggles:
    def test_without_fast_decisions_still_correct(self, schema_2d):
        checker = SubsumptionChecker(
            delta=1e-6, max_iterations=2000, use_fast_decisions=False, rng=5
        )
        s = Subscription.from_constraints(schema_2d, {"x1": (10, 20), "x2": (10, 20)})
        coverer = Subscription.from_constraints(schema_2d, {"x1": (0, 30), "x2": (0, 30)})
        result = checker.check(s, [coverer])
        assert result.covered

    def test_without_mcs_still_correct(
        self, table3_subscription, table3_candidates
    ):
        checker = SubsumptionChecker(
            delta=1e-6, max_iterations=2000, use_mcs=False, rng=5
        )
        result = checker.check(table3_subscription, table3_candidates)
        assert result.covered
        assert result.reduced_set_size == result.original_set_size

    def test_is_covered_convenience(self, checker, table3_subscription, table3_candidates):
        assert checker.is_covered(table3_subscription, table3_candidates)

    def test_theoretical_d_with_and_without_mcs(
        self, table3_subscription, table7_candidates
    ):
        checker = SubsumptionChecker(delta=1e-6, rng=0)
        with_mcs = checker.theoretical_d(table3_subscription, table7_candidates)
        without = checker.theoretical_d(
            table3_subscription, table7_candidates, apply_mcs=False
        )
        assert with_mcs <= without
        assert checker.theoretical_d(table3_subscription, []) == 0.0


class TestSeededReproducibility:
    def test_same_seed_same_outcome(self, table6_subscription, table6_candidates):
        a = SubsumptionChecker(delta=1e-6, rng=99).check(
            table6_subscription, table6_candidates
        )
        b = SubsumptionChecker(delta=1e-6, rng=99).check(
            table6_subscription, table6_candidates
        )
        assert a.answer == b.answer
        assert a.iterations_performed == b.iterations_performed


class TestSoundness:
    """The pipeline may only err in one direction (false 'covered')."""

    @pytest.mark.parametrize("seed", range(10))
    def test_no_answers_are_always_correct(self, seed, schema_small):
        from repro.core.exact import exact_group_cover
        from repro.workloads.generators import (
            random_subscription,
            random_subscription_intersecting,
        )

        rng = np.random.default_rng(seed)
        checker = SubsumptionChecker(delta=1e-3, max_iterations=500, rng=seed)
        for _ in range(5):
            s = random_subscription(schema_small, rng)
            candidates = [
                random_subscription_intersecting(s, rng, cover_probability=0.4)
                for _ in range(5)
            ]
            result = checker.check(s, candidates)
            if not result.covered:
                assert exact_group_cover(s, candidates) is False

    @pytest.mark.parametrize("seed", range(5))
    def test_covered_instances_always_accepted(self, seed, schema_small):
        """Deterministically covered instances are never declared NO."""
        from repro.workloads.scenarios import (
            pairwise_covering_scenario,
            redundant_covering_scenario,
        )

        rng = np.random.default_rng(seed)
        checker = SubsumptionChecker(delta=1e-6, max_iterations=5000, rng=seed)
        pairwise = pairwise_covering_scenario(schema_small, 8, rng)
        assert checker.check(pairwise.subscription, pairwise.candidates).covered
        redundant = redundant_covering_scenario(schema_small, 10, rng)
        assert checker.check(redundant.subscription, redundant.candidates).covered
