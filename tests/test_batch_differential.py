"""Seeded differential sweeps: the batch-native fast path vs scalar.

Every batched stage of the broker pipeline must be observationally
identical to its one-at-a-time ancestor: per-link covering decisions
(``decide_batch`` vs ``decide``, field for field, with same-seeded
checkers), and whole-run delivery (``publish_many`` vs ``publish``,
report for report).  The sweep crosses all five reduction policies with
three scenario shapes — t0-smoke, t1-churn and a scaled-down t2-burst —
so the equivalence is pinned on realistic workload distributions, not
just synthetic boxes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.broker import grid_topology
from repro.broker.network import BrokerNetwork
from repro.core.policies import make_strategy, strategy_names
from repro.core.subsumption import SubsumptionChecker
from repro.model import Publication, Schema, Subscription
from repro.scenarios import catalog  # noqa: F401 - populates the registry
from repro.scenarios.events import EventAction, compile_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import PhaseKind, PhaseSpec

POLICIES = ("none", "pairwise", "group", "merging", "hybrid")

SEED = 7

#: keys stripped from report comparisons (wall-clock dependent)
VOLATILE = {"wall_time", "events_per_second"}


def _scenario_spec(name: str):
    if name == "t2-burst-scaled":
        base = get_scenario("t2-burst")
        return dataclasses.replace(
            base,
            name="t2-burst-scaled",
            phases=[
                PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 40}),
                PhaseSpec("burst-1", PhaseKind.PUBLISH_BURST, {"count": 60}),
                PhaseSpec(
                    "storm", PhaseKind.UNSUBSCRIBE_STORM, {"fraction": 0.5}
                ),
                PhaseSpec("re-ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 20}),
                PhaseSpec("burst-2", PhaseKind.PUBLISH_BURST, {"count": 60}),
            ],
        )
    return get_scenario(name)


def _compiled(name: str, policy: str):
    spec = dataclasses.replace(_scenario_spec(name), policy=policy)
    return spec, compile_scenario(spec, SEED)


def _scenario_subscriptions(name: str):
    """Subscriptions as the scenario's workload generator draws them."""
    _, compiled = _compiled(name, "none")
    return [
        event.subscription
        for event in compiled.events
        if event.action is EventAction.SUBSCRIBE
    ]


def _strip(obj):
    if isinstance(obj, dict):
        return {k: _strip(v) for k, v in obj.items() if k not in VOLATILE}
    if isinstance(obj, list):
        return [_strip(v) for v in obj]
    return obj


def _result_fields(result):
    if result is None:
        return None
    witness = result.witness_point
    return (
        result.answer,
        result.method,
        result.original_set_size,
        result.reduced_set_size,
        result.rho_w,
        result.theoretical_iterations,
        result.iterations_performed,
        result.error_bound,
        None if witness is None else witness.tobytes(),
        result.covering_row,
        result.truncated,
    )


def assert_decisions_identical(scalar, batched):
    assert len(scalar) == len(batched)
    for a, b in zip(scalar, batched):
        assert a.subscription.id == b.subscription.id
        assert a.forwarded == b.forwarded
        assert a.covered_by == b.covered_by
        assert a.replaced == b.replaced
        assert a.false_volume == b.false_volume
        assert a.candidates_considered == b.candidates_considered
        assert a.rspc_iterations == b.rspc_iterations
        assert (a.merged is None) == (b.merged is None)
        if a.merged is not None:
            assert a.merged.same_box(b.merged)
        assert _result_fields(a.result) == _result_fields(b.result)


class TestDecideBatchSweep:
    """decide_batch == decide, field for field, same-seeded checkers."""

    @pytest.mark.parametrize("scenario", ("t0-smoke", "t1-churn", "t2-burst-scaled"))
    @pytest.mark.parametrize("policy", POLICIES)
    def test_batch_matches_sequential(self, scenario, policy):
        subscriptions = _scenario_subscriptions(scenario)
        assert len(subscriptions) >= 8, "scenario too small for the sweep"
        half = len(subscriptions) // 2
        candidates = subscriptions[:half][:12]
        subjects = subscriptions[half:][:12]

        def checker():
            return SubsumptionChecker(
                delta=1e-3, max_iterations=64, rng=SEED
            )

        scalar_strategy = make_strategy(policy, checker=checker())
        batch_strategy = make_strategy(policy, checker=checker())
        scalar = [
            scalar_strategy.decide(s, list(candidates)) for s in subjects
        ]
        batched = batch_strategy.decide_batch(subjects, candidates)
        assert_decisions_identical(scalar, batched)

    def test_all_policies_swept(self):
        assert set(POLICIES) == set(strategy_names())


class TestPublishManySweep:
    """Whole-run delivery is identical with the burst path disabled."""

    @staticmethod
    def _scalarise(monkeypatch):
        """Force publish_many through the one-at-a-time path."""

        def sequential(self, operations):
            records = []
            for client_id, publication in operations:
                records.extend(self.publish(client_id, publication))
            return records

        monkeypatch.setattr(BrokerNetwork, "publish_many", sequential)

    @pytest.mark.parametrize("scenario", ("t0-smoke", "t1-churn", "t2-burst-scaled"))
    @pytest.mark.parametrize("policy", POLICIES)
    def test_reports_identical(self, scenario, policy, monkeypatch):
        spec, compiled = _compiled(scenario, policy)
        batched = ScenarioRunner(spec, seed=SEED, backend="network").run(
            compiled
        )
        self._scalarise(monkeypatch)
        scalar = ScenarioRunner(spec, seed=SEED, backend="network").run(
            compiled
        )
        assert batched.trace_hash == scalar.trace_hash
        assert _strip(batched.to_dict()) == _strip(scalar.to_dict())


class TestBatchDedup:
    """The chunked burst drain respects the dedup window on cycles."""

    def _network(self, dedup_window=4096):
        schema = Schema.uniform_integer(2, 0, 100)
        network = BrokerNetwork(
            grid_topology(3, 3), policy="none", dedup_window=dedup_window
        )
        network.attach_client("sub", "B1")
        network.attach_client("pub", "B9")
        network.subscribe(
            "sub", Subscription.from_constraints(schema, {"x1": (0, 100)})
        )
        return schema, network

    def test_burst_on_mesh_delivers_exactly_once_each(self):
        schema, network = self._network()
        burst = [
            ("pub", Publication.from_values(schema, {"x1": value, "x2": 0}))
            for value in range(20)
        ]
        delivered = network.publish_many(burst)
        assert len(delivered) == 20
        assert network.metrics.notifications == 20
        assert network.metrics.missed_notifications == 0

    def test_intra_batch_duplicate_values_each_delivered(self):
        """Equal payloads in distinct events are never deduplicated."""
        schema, network = self._network()
        burst = [
            ("pub", Publication.from_values(schema, {"x1": 5, "x2": 5}))
            for _ in range(5)
        ]
        delivered = network.publish_many(burst)
        assert len(delivered) == 5
        assert network.metrics.notifications == 5

    def test_intra_batch_duplicate_ids_match_sequential(self):
        """Re-publishing one event id dedups the same way batch or not."""
        schema, network = self._network()
        payload = Publication.from_values(schema, {"x1": 5, "x2": 5})
        batched = network.publish_many([("pub", payload)] * 5)

        schema2, reference = self._network()
        payload2 = Publication.from_values(schema2, {"x1": 5, "x2": 5})
        sequential = []
        for _ in range(5):
            sequential.extend(reference.publish("pub", payload2))
        assert len(batched) == len(sequential)
        assert (
            network.metrics.notifications == reference.metrics.notifications
        )

    def test_burst_larger_than_dedup_window_matches_sequential(self):
        """Chunked drains (burst > window) lose nothing on a mesh."""
        schema, network = self._network(dedup_window=4)
        burst = [
            ("pub", Publication.from_values(schema, {"x1": value, "x2": 1}))
            for value in range(13)
        ]
        delivered = network.publish_many(burst)
        assert len(delivered) == 13

        schema2, reference = self._network(dedup_window=4)
        total = 0
        for value in range(13):
            total += len(
                reference.publish(
                    "pub",
                    Publication.from_values(schema2, {"x1": value, "x2": 1}),
                )
            )
        assert total == 13
        assert (
            network.metrics.notifications == reference.metrics.notifications
        )
        assert (
            network.metrics.missed_notifications
            == reference.metrics.missed_notifications
        )


class TestRouteLookupBatch:
    """The broker's batched route lookup equals per-publication matching."""

    def test_match_batch_equals_sequential_on_scenario_subs(self):
        from repro.broker.routing import RouteEntry, RoutingTable, SourceKind
        from repro.workloads.generators import publication_inside

        subscriptions = _scenario_subscriptions("t1-churn")[:30]
        rng = np.random.default_rng(SEED)
        table = RoutingTable()
        for index, subscription in enumerate(subscriptions):
            table.add(
                RouteEntry(
                    subscription, SourceKind.LOCAL, f"c{index}", origin="B1"
                )
            )
        publications = [
            publication_inside(subscriptions[int(rng.integers(len(subscriptions)))], rng)
            for _ in range(25)
        ]
        batch = table.matching_entries_batch(publications)
        for publication, (matched, tests) in zip(publications, batch):
            expected, expected_tests = table.matching_entries_with_tests(
                publication
            )
            assert [e.subscription.id for e in matched] == [
                e.subscription.id for e in expected
            ]
            assert tests == expected_tests
