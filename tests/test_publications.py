"""Unit tests for :mod:`repro.model.publications`."""

import pytest

from repro.model import ImprecisePublication, Publication, Schema, Subscription
from repro.model.errors import ValidationError


@pytest.fixture
def schema():
    return Schema.uniform_integer(3, 0, 100)


@pytest.fixture
def subscription(schema):
    return Subscription.from_constraints(schema, {"x1": (10, 20), "x2": (30, 60)})


class TestPublication:
    def test_from_values(self, schema):
        publication = Publication.from_values(schema, {"x1": 1, "x2": 2, "x3": 3})
        assert publication.values.tolist() == [1.0, 2.0, 3.0]

    def test_value_lookup(self, schema):
        publication = Publication.from_values(schema, {"x1": 1, "x2": 2, "x3": 3})
        assert publication.value("x2") == 2
        assert publication.value(0) == 1

    def test_as_dict(self, schema):
        payload = {"x1": 1, "x2": 2, "x3": 3}
        publication = Publication.from_values(schema, payload)
        assert publication.as_dict() == payload

    def test_wrong_arity_rejected(self, schema):
        with pytest.raises(ValidationError):
            Publication(schema, [1.0, 2.0])

    def test_out_of_domain_rejected(self, schema):
        with pytest.raises(ValidationError):
            Publication(schema, [1.0, 2.0, 500.0])

    def test_matched_by(self, schema, subscription):
        inside = Publication.from_values(schema, {"x1": 15, "x2": 40, "x3": 0})
        outside = Publication.from_values(schema, {"x1": 25, "x2": 40, "x3": 0})
        assert inside.matched_by(subscription)
        assert not outside.matched_by(subscription)

    def test_values_read_only(self, schema):
        publication = Publication.from_values(schema, {"x1": 1, "x2": 2, "x3": 3})
        with pytest.raises(ValueError):
            publication.values[0] = 9.0

    def test_ids_unique(self, schema):
        a = Publication(schema, [0, 0, 0])
        b = Publication(schema, [0, 0, 0])
        assert a.id != b.id

    def test_equality(self, schema):
        a = Publication(schema, [1, 2, 3], publication_id="p")
        b = Publication(schema, [1, 2, 3], publication_id="p")
        assert a == b
        assert hash(a) == hash(b)
        assert a != "something else"

    def test_describe(self, schema):
        publication = Publication.from_values(schema, {"x1": 1, "x2": 2, "x3": 3})
        assert "x1=1" in publication.describe()


class TestImprecisePublication:
    def test_from_point_expands_box(self, schema):
        point = Publication.from_values(schema, {"x1": 50, "x2": 50, "x3": 50})
        box = ImprecisePublication.from_point(point, {"x1": 5, "x2": 10})
        assert box.interval("x1").as_tuple() == (45.0, 55.0)
        assert box.interval("x2").as_tuple() == (40.0, 60.0)
        assert box.interval("x3").as_tuple() == (50.0, 50.0)

    def test_expansion_clipped_to_domain(self, schema):
        point = Publication.from_values(schema, {"x1": 2, "x2": 99, "x3": 0})
        box = ImprecisePublication.from_point(point, {"x1": 10, "x2": 10})
        assert box.interval("x1").low == 0.0
        assert box.interval("x2").high == 100.0

    def test_certain_vs_possible_match(self, schema, subscription):
        point = Publication.from_values(schema, {"x1": 19, "x2": 40, "x3": 0})
        fuzzy = ImprecisePublication.from_point(point, {"x1": 5})
        # The box [14, 24] sticks out of [10, 20]: only a possible match.
        assert not fuzzy.matched_by(subscription)
        assert fuzzy.possibly_matched_by(subscription)

    def test_certain_match_inside(self, schema, subscription):
        point = Publication.from_values(schema, {"x1": 15, "x2": 40, "x3": 0})
        fuzzy = ImprecisePublication.from_point(point, {"x1": 2, "x2": 2})
        assert fuzzy.matched_by(subscription)

    def test_publisher_aliases_subscriber_slot(self, schema):
        box = ImprecisePublication(schema, [0, 0, 0], [1, 1, 1], publisher="sensor-1")
        assert box.publisher == "sensor-1"
