"""Shared fixtures: schemas, RNGs and the paper's worked examples."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import Schema, Subscription


@pytest.fixture
def rng():
    """A deterministic random generator for test reproducibility."""
    return np.random.default_rng(20060331)


@pytest.fixture
def schema_2d():
    """The 2-D integer schema used by the paper's worked examples."""
    return Schema.uniform_integer(2, 0, 10_000, prefix="x", name="paper-2d")


@pytest.fixture
def schema_small():
    """A small 3-attribute schema for quick algorithm tests."""
    return Schema.uniform_integer(3, 0, 1_000, prefix="x", name="small")


@pytest.fixture
def schema_medium():
    """A 5-attribute schema matching the extreme non-cover experiments."""
    return Schema.uniform_integer(5, 0, 10_000, prefix="x", name="medium")


# ----------------------------------------------------------------------
# Worked example of Table 3 / Figure 2: s ⊑ (s1 ∨ s2)
# ----------------------------------------------------------------------
@pytest.fixture
def table3_subscription(schema_2d):
    """The tested subscription ``s`` of Table 3."""
    return Subscription.from_constraints(
        schema_2d, {"x1": (830, 870), "x2": (1003, 1006)}, subscription_id="s"
    )


@pytest.fixture
def table3_candidates(schema_2d):
    """The set ``{s1, s2}`` of Table 3 (jointly covering ``s``)."""
    s1 = Subscription.from_constraints(
        schema_2d, {"x1": (820, 850), "x2": (1001, 1007)}, subscription_id="s1"
    )
    s2 = Subscription.from_constraints(
        schema_2d, {"x1": (840, 880), "x2": (1002, 1009)}, subscription_id="s2"
    )
    return [s1, s2]


# ----------------------------------------------------------------------
# Worked example of Table 6 / Figure 3: non-cover with a witness
# ----------------------------------------------------------------------
@pytest.fixture
def table6_subscription(schema_2d):
    """The tested subscription ``s`` of Table 6."""
    return Subscription.from_constraints(
        schema_2d, {"x1": (830, 890), "x2": (1003, 1006)}, subscription_id="s"
    )


@pytest.fixture
def table6_candidates(schema_2d):
    """The set ``{s1, s2}`` of Table 6 (leaving ``x1 > 870`` uncovered)."""
    s1 = Subscription.from_constraints(
        schema_2d, {"x1": (820, 850), "x2": (1002, 1009)}, subscription_id="s1"
    )
    s2 = Subscription.from_constraints(
        schema_2d, {"x1": (840, 870), "x2": (1001, 1007)}, subscription_id="s2"
    )
    return [s1, s2]


# ----------------------------------------------------------------------
# Worked example of Table 7 / Table 8: the conflict-free subscription s3
# ----------------------------------------------------------------------
@pytest.fixture
def table7_candidates(schema_2d, table3_candidates):
    """``{s1, s2, s3}`` of Table 7 (``s3`` has only conflict-free entries)."""
    s3 = Subscription.from_constraints(
        schema_2d, {"x1": (810, 890), "x2": (1004, 1005)}, subscription_id="s3"
    )
    return table3_candidates + [s3]
