"""Unit tests for :mod:`repro.core.results`."""

import numpy as np
import pytest

from repro.core.results import Answer, DecisionMethod, SubsumptionResult


class TestAnswer:
    def test_covered_flags(self):
        assert Answer.COVERED.is_covered
        assert Answer.PROBABLY_COVERED.is_covered
        assert not Answer.NOT_COVERED.is_covered

    def test_certainty_flags(self):
        assert Answer.COVERED.is_certain
        assert Answer.NOT_COVERED.is_certain
        assert not Answer.PROBABLY_COVERED.is_certain


class TestSubsumptionResult:
    def _result(self, **overrides):
        payload = dict(
            answer=Answer.PROBABLY_COVERED,
            method=DecisionMethod.RSPC_EXHAUSTED,
            original_set_size=10,
            reduced_set_size=4,
            rho_w=0.2,
            theoretical_iterations=60.0,
            iterations_performed=60,
            error_bound=1e-6,
        )
        payload.update(overrides)
        return SubsumptionResult(**payload)

    def test_views(self):
        result = self._result()
        assert result.covered
        assert not result.certain
        assert result.is_probabilistic
        assert result.reduction_ratio == pytest.approx(0.6)

    def test_reduction_ratio_empty_set(self):
        result = self._result(original_set_size=0, reduced_set_size=0)
        assert result.reduction_ratio == 0.0

    def test_summary_mentions_error_for_probabilistic_answers(self):
        text = self._result().summary()
        assert "error<=" in text
        assert "rho_w=" in text
        assert "d=" in text

    def test_summary_for_deterministic_answer(self):
        result = self._result(
            answer=Answer.COVERED,
            method=DecisionMethod.PAIRWISE_COVER,
            rho_w=None,
            theoretical_iterations=None,
            iterations_performed=0,
        )
        text = result.summary()
        assert "covered" in text
        assert "error<=" not in text
        assert str(result) == text

    def test_witness_point_carried(self):
        witness = np.array([1.0, 2.0])
        result = self._result(
            answer=Answer.NOT_COVERED,
            method=DecisionMethod.POINT_WITNESS,
            witness_point=witness,
            error_bound=0.0,
        )
        assert result.witness_point is witness
        assert result.certain
        assert not result.covered

    def test_details_dictionary_defaults_empty(self):
        assert self._result().details == {}
