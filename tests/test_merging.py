"""Unit tests for :mod:`repro.core.merging` (the complementary technique)."""

import numpy as np
import pytest

from repro.core.exact import exact_group_cover
from repro.core.merging import (
    GreedyMerger,
    false_positive_volume,
    merge_pair,
    perfect_merge_candidates,
)
from repro.model import Schema, Subscription
from repro.workloads.generators import random_subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def box(schema, x1, x2, sid=None):
    return Subscription.from_constraints(
        schema, {"x1": x1, "x2": x2}, subscription_id=sid
    )


class TestMergePair:
    def test_adjacent_boxes_merge_perfectly(self, schema):
        left = box(schema, (0, 49), (0, 99))
        right = box(schema, (50, 99), (0, 99))
        outcome = merge_pair(left, right)
        assert outcome.is_perfect
        assert outcome.false_volume == 0.0
        assert outcome.merged.covers(left) and outcome.merged.covers(right)

    def test_diagonal_boxes_produce_false_volume(self, schema):
        a = box(schema, (0, 9), (0, 9))
        b = box(schema, (90, 99), (90, 99))
        outcome = merge_pair(a, b)
        assert not outcome.is_perfect
        assert outcome.false_volume == outcome.merged.size() - a.size() - b.size()
        assert 0.0 < outcome.relative_overhead < 1.0

    def test_nested_boxes_merge_to_outer(self, schema):
        outer = box(schema, (0, 50), (0, 50))
        inner = box(schema, (10, 20), (10, 20))
        outcome = merge_pair(outer, inner)
        assert outcome.merged.same_box(outer)
        assert outcome.is_perfect

    def test_false_positive_volume_matches_oracle(self, schema):
        rng = np.random.default_rng(3)
        for _ in range(10):
            a = random_subscription(schema, rng, width_fraction=(0.1, 0.4))
            b = random_subscription(schema, rng, width_fraction=(0.1, 0.4))
            outcome = merge_pair(a, b)
            # The merged box always covers both inputs, and subtracting them
            # exactly accounts for the reported false volume.
            assert outcome.false_volume == false_positive_volume(
                outcome.merged, [a, b]
            )
            assert outcome.false_volume >= 0.0


class TestPerfectCandidates:
    def test_finds_only_touching_pairs(self, schema):
        subscriptions = [
            box(schema, (0, 49), (0, 49), sid="left"),
            box(schema, (50, 99), (0, 49), sid="right"),
            box(schema, (0, 9), (60, 99), sid="corner"),
        ]
        pairs = perfect_merge_candidates(subscriptions)
        assert (0, 1) in pairs
        assert (0, 2) not in pairs
        assert (1, 2) not in pairs


class TestGreedyMerger:
    def test_zero_budget_only_perfect_merges(self, schema):
        merger = GreedyMerger(max_relative_overhead=0.0)
        subscriptions = [
            box(schema, (0, 24), (0, 49)),
            box(schema, (25, 49), (0, 49)),
            box(schema, (50, 99), (0, 49)),
            box(schema, (0, 5), (60, 99)),  # cannot merge without false volume
        ]
        reduced = merger.reduce(subscriptions)
        assert len(reduced) == 2
        assert merger.total_false_volume == 0.0
        assert merger.merges_performed == 2
        # The merged set still covers exactly the original subscriptions.
        for original in subscriptions:
            assert exact_group_cover(original, reduced)

    def test_budget_allows_lossy_merges(self, schema):
        merger = GreedyMerger(max_relative_overhead=1.0)
        subscriptions = [
            box(schema, (0, 9), (0, 9)),
            box(schema, (20, 29), (20, 29)),
            box(schema, (80, 89), (80, 89)),
        ]
        reduced = merger.reduce(subscriptions)
        assert len(reduced) == 1
        assert merger.total_false_volume > 0.0

    def test_target_size_stops_early(self, schema):
        merger = GreedyMerger(max_relative_overhead=1.0, target_size=2)
        subscriptions = [box(schema, (i * 10, i * 10 + 9), (0, 99)) for i in range(4)]
        reduced = merger.reduce(subscriptions)
        assert len(reduced) == 2

    def test_merged_set_never_loses_coverage(self, schema):
        """Merging only over-approximates: everything the originals accepted
        is still accepted (no false negatives, unlike covering errors)."""
        rng = np.random.default_rng(9)
        subscriptions = [
            random_subscription(schema, rng, width_fraction=(0.1, 0.3))
            for _ in range(8)
        ]
        merger = GreedyMerger(max_relative_overhead=0.5)
        reduced = merger.reduce(subscriptions)
        for original in subscriptions:
            assert exact_group_cover(original, reduced)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            GreedyMerger(max_relative_overhead=-0.1)

    def test_single_subscription_untouched(self, schema):
        merger = GreedyMerger()
        only = [box(schema, (0, 10), (0, 10))]
        assert merger.reduce(only) == only
