"""Unit tests for :mod:`repro.core.error_model` (Eq. 1 and Eq. 2)."""

import math

import pytest

from repro.core.error_model import (
    chain_delivery_probability,
    compute_required_iterations,
    effective_error,
    error_probability,
    required_iterations,
)


class TestErrorProbability:
    def test_matches_closed_form(self):
        assert error_probability(0.1, 10) == pytest.approx(0.9**10)

    def test_zero_rho_never_learns(self):
        assert error_probability(0.0, 1000) == 1.0

    def test_rho_one_is_certain_after_one_trial(self):
        assert error_probability(1.0, 1) == 0.0
        assert error_probability(1.0, 0) == 1.0

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            error_probability(1.5, 10)
        with pytest.raises(ValueError):
            error_probability(0.5, -1)

    def test_monotone_in_iterations(self):
        assert error_probability(0.2, 5) > error_probability(0.2, 50)


class TestRequiredIterations:
    def test_inverts_the_bound(self):
        d = required_iterations(1e-6, 0.05)
        assert error_probability(0.05, d) <= 1e-6
        assert error_probability(0.05, d - 1) > 1e-6

    def test_increases_as_delta_decreases(self):
        assert required_iterations(1e-10, 0.01) > required_iterations(1e-3, 0.01)

    def test_increases_as_rho_decreases(self):
        assert required_iterations(1e-6, 0.001) > required_iterations(1e-6, 0.1)

    def test_extreme_rho_values(self):
        assert required_iterations(1e-6, 1.0) == 1.0
        assert math.isinf(required_iterations(1e-6, 0.0))

    def test_tiny_rho_does_not_crash(self):
        d = required_iterations(1e-10, 1e-60)
        assert d > 1e59
        assert math.isfinite(d)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            required_iterations(0.0, 0.5)
        with pytest.raises(ValueError):
            required_iterations(1.0, 0.5)

    def test_compute_required_iterations_caps(self):
        assert compute_required_iterations(1e-10, 1e-9, max_iterations=500) == 500
        assert compute_required_iterations(0.5, 0.5, max_iterations=500) == 1

    def test_effective_error_degenerate(self):
        assert effective_error(0.0, 100) == 1.0
        assert effective_error(0.5, 2) == pytest.approx(0.25)


class TestChainDelivery:
    def test_single_broker_is_rho(self):
        assert chain_delivery_probability(0.3, 0.1, 1) == pytest.approx(0.3)

    def test_matches_equation_two(self):
        rho, delta, n = 0.2, 0.05, 4
        expected = sum(
            rho * ((1 - rho) * (1 - delta)) ** (i - 1) for i in range(1, n + 1)
        )
        assert chain_delivery_probability(rho, delta, n) == pytest.approx(expected)

    def test_perfect_decisions_approach_one(self):
        value = chain_delivery_probability(0.25, 0.0, 200)
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_monotone_in_chain_length(self):
        short = chain_delivery_probability(0.1, 0.1, 2)
        long = chain_delivery_probability(0.1, 0.1, 20)
        assert long > short

    def test_monotone_in_delta(self):
        good = chain_delivery_probability(0.1, 0.01, 10)
        bad = chain_delivery_probability(0.1, 0.5, 10)
        assert good > bad

    def test_bounded_by_one(self):
        assert chain_delivery_probability(0.9, 0.0, 100) <= 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chain_delivery_probability(0.5, 0.5, 0)
        with pytest.raises(ValueError):
            chain_delivery_probability(1.5, 0.5, 2)
        with pytest.raises(ValueError):
            chain_delivery_probability(0.5, -0.1, 2)
