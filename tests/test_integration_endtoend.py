"""End-to-end integration tests combining workloads, matching and brokers.

These mirror the runnable examples: the bike-rental scenario on a single
matching node and the Grid scenario over a broker overlay, checking the
properties the examples print (equivalent notifications, reduced state and
traffic) automatically and at a smaller scale.
"""

import numpy as np
import pytest

from repro.broker import BrokerNetwork, CoveringPolicy, star_topology
from repro.core.store import CoveringPolicyName
from repro.core.subsumption import SubsumptionChecker
from repro.matching import MatchingEngine
from repro.workloads import BikeRentalWorkload, GridWorkload


class TestBikeRentalEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        workload = BikeRentalWorkload(rng=11)
        subscriptions = workload.subscriptions(120)
        publications = []
        for index in range(80):
            if index % 2 == 0:
                publications.append(workload.publication(publisher=f"post-{index}"))
            else:
                target = subscriptions[index % len(subscriptions)]
                publications.append(
                    workload.matching_publication(target, publisher=f"post-{index}")
                )
        return workload, subscriptions, publications

    def _engine(self, policy, seed=5):
        checker = SubsumptionChecker(delta=1e-9, max_iterations=1000, rng=seed)
        return MatchingEngine(policy=policy, checker=checker)

    def test_group_policy_reduces_active_set(self, setup):
        _, subscriptions, _ = setup
        flooding = self._engine(CoveringPolicyName.NONE)
        group = self._engine(CoveringPolicyName.GROUP)
        for subscription in subscriptions:
            flooding.subscribe(subscription.replace(subscription_id=f"{subscription.id}-f"))
            group.subscribe(subscription.replace(subscription_id=f"{subscription.id}-g"))
        assert len(group.active_subscriptions) < len(flooding.active_subscriptions)
        assert len(group) == len(flooding)

    def test_notifications_equivalent_across_policies(self, setup):
        _, subscriptions, publications = setup
        engines = {
            "flood": self._engine(CoveringPolicyName.NONE),
            "pairwise": self._engine(CoveringPolicyName.PAIRWISE),
            "group": self._engine(CoveringPolicyName.GROUP),
        }
        for name, engine in engines.items():
            for subscription in subscriptions:
                engine.subscribe(
                    subscription.replace(subscription_id=f"{subscription.id}-{name}")
                )
        total_mismatch = 0
        total_expected = 0
        for publication in publications:
            expected = set(engines["flood"].match(publication).subscribers)
            total_expected += len(expected)
            pairwise = set(engines["pairwise"].match(publication).subscribers)
            assert pairwise == expected
            group = set(engines["group"].match(publication).subscribers)
            assert group <= expected
            total_mismatch += len(expected - group)
        if total_expected:
            assert total_mismatch / total_expected <= 0.02

    def test_covering_reduces_matching_work(self, setup):
        _, subscriptions, publications = setup
        flooding = self._engine(CoveringPolicyName.NONE)
        group = self._engine(CoveringPolicyName.GROUP)
        for subscription in subscriptions:
            flooding.subscribe(subscription.replace(subscription_id=f"{subscription.id}-fl"))
            group.subscribe(subscription.replace(subscription_id=f"{subscription.id}-gr"))
        for publication in publications:
            flooding.match(publication)
            group.match(publication)
        assert group.stats["active_tests"] < flooding.stats["active_tests"]


class TestGridEndToEnd:
    def test_star_overlay_discovery(self):
        workload = GridWorkload(rng=21)
        services = workload.service_subscriptions(40)
        network = BrokerNetwork(
            star_topology(6), policy=CoveringPolicy.GROUP, rng=3, delta=1e-9
        )
        broker_ids = network.broker_ids
        for index, service in enumerate(services):
            broker = broker_ids[index % len(broker_ids)]
            network.attach_client(service.subscriber, broker)
            network.subscribe(service.subscriber, service)

        network.attach_client("gateway", broker_ids[0])
        for index in range(60):
            if index % 2 == 0:
                job = workload.job_publication(job_id=f"job-{index}")
            else:
                job = workload.matching_job(
                    services[index % len(services)], job_id=f"fit-{index}"
                )
            network.publish("gateway", job)

        metrics = network.metrics
        # Jobs reach (essentially) every fitting service.
        assert metrics.expected_notifications > 0
        assert metrics.delivery_ratio >= 0.95
        # The covering policy suppressed at least some forwarding decisions.
        assert metrics.suppressed_subscriptions > 0
        # Sanity: routing state is bounded by services times brokers.
        assert network.total_routing_entries() <= len(services) * len(broker_ids)
