"""Unit tests for :mod:`repro.core.exact` (the deterministic oracle)."""

import numpy as np
import pytest

from repro.core.exact import exact_group_cover, exact_witness_point, uncovered_region
from repro.model import ContinuousDomain, Schema, Subscription


class TestPaperExamples:
    def test_table3_is_covered(self, table3_subscription, table3_candidates):
        assert exact_group_cover(table3_subscription, table3_candidates) is True

    def test_table6_is_not_covered(self, table6_subscription, table6_candidates):
        assert exact_group_cover(table6_subscription, table6_candidates) is False

    def test_table6_witness_region_is_the_gap(
        self, table6_subscription, table6_candidates
    ):
        region = uncovered_region(table6_subscription, table6_candidates)
        assert region
        # Every uncovered box lies beyond x1 = 870 (the polyhedron witness of
        # Figure 3) and inside s.
        for piece in region:
            assert piece.interval("x1").low >= 871
            assert table6_subscription.covers(piece)

    def test_witness_point(self, table6_subscription, table6_candidates):
        point = exact_witness_point(table6_subscription, table6_candidates)
        assert point is not None
        assert table6_subscription.contains_point(point)
        assert not any(c.contains_point(point) for c in table6_candidates)

    def test_witness_point_none_when_covered(
        self, table3_subscription, table3_candidates
    ):
        assert exact_witness_point(table3_subscription, table3_candidates) is None


class TestGeneralBehaviour:
    def test_empty_candidates_leave_everything_uncovered(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 10), "x2": (0, 10)})
        assert exact_group_cover(s, []) is False
        region = uncovered_region(s, [])
        assert len(region) == 1
        assert region[0].same_box(s)

    def test_exact_cover_by_partition(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 99), "x2": (0, 99)})
        left = Subscription.from_constraints(schema_2d, {"x1": (0, 49), "x2": (0, 99)})
        right = Subscription.from_constraints(schema_2d, {"x1": (50, 99), "x2": (0, 99)})
        assert exact_group_cover(s, [left, right]) is True

    def test_one_point_gap_detected(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 99), "x2": (0, 99)})
        left = Subscription.from_constraints(schema_2d, {"x1": (0, 49), "x2": (0, 99)})
        right = Subscription.from_constraints(schema_2d, {"x1": (51, 99), "x2": (0, 99)})
        assert exact_group_cover(s, [left, right]) is False
        witness = exact_witness_point(s, [left, right])
        assert witness[0] == 50.0

    def test_duplicate_candidates(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (10, 20), "x2": (10, 20)})
        cover = Subscription.from_constraints(schema_2d, {"x1": (0, 30), "x2": (0, 30)})
        assert exact_group_cover(s, [cover, cover, cover]) is True

    def test_uncovered_region_measure_adds_up(self, schema_2d, rng):
        """The uncovered boxes are disjoint and their sizes sum to the size
        of s minus the size of the covered part (checked by sampling)."""
        from repro.workloads.generators import random_subscription_intersecting

        s = Subscription.from_constraints(schema_2d, {"x1": (0, 60), "x2": (0, 60)})
        candidates = [
            random_subscription_intersecting(s, rng) for _ in range(4)
        ]
        region = uncovered_region(s, candidates)
        total_uncovered = sum(piece.size() for piece in region)
        # Monte Carlo estimate of the uncovered fraction.
        samples = 3000
        hits = 0
        for _ in range(samples):
            point = s.sample_point(rng)
            if not any(c.contains_point(point) for c in candidates):
                hits += 1
        estimate = hits / samples * s.size()
        assert total_uncovered == pytest.approx(estimate, rel=0.25, abs=5.0)

    def test_box_budget_guard(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 99), "x2": (0, 99)})
        candidates = [
            Subscription.from_constraints(
                schema_2d, {"x1": (i, i), "x2": (i, i)}
            )
            for i in range(1, 60)
        ]
        with pytest.raises(RuntimeError):
            uncovered_region(s, candidates, max_boxes=10)

    def test_continuous_domain_cover(self):
        schema = Schema(
            [("x", ContinuousDomain(0.0, 1.0)), ("y", ContinuousDomain(0.0, 1.0))]
        )
        s = Subscription.from_constraints(schema, {"x": (0.2, 0.8), "y": (0.2, 0.8)})
        left = Subscription.from_constraints(schema, {"x": (0.0, 0.5), "y": (0.0, 1.0)})
        right = Subscription.from_constraints(schema, {"x": (0.5, 1.0), "y": (0.0, 1.0)})
        assert exact_group_cover(s, [left, right]) is True
        assert exact_group_cover(s, [left]) is False


class TestAgreementWithRSPC:
    @pytest.mark.parametrize("seed", range(8))
    def test_rspc_no_answers_agree_with_oracle(self, seed, schema_small):
        """Whenever the probabilistic pipeline answers NO, the oracle agrees."""
        from repro.core.subsumption import SubsumptionChecker
        from repro.workloads.generators import (
            random_subscription,
            random_subscription_intersecting,
        )

        rng = np.random.default_rng(seed)
        checker = SubsumptionChecker(delta=1e-4, max_iterations=2000, rng=seed)
        s = random_subscription(schema_small, rng)
        candidates = [
            random_subscription_intersecting(s, rng, cover_probability=0.5)
            for _ in range(6)
        ]
        result = checker.check(s, candidates)
        truth = exact_group_cover(s, candidates)
        if not result.covered:
            assert truth is False
