"""Unit tests for :mod:`repro.core.decisions` (Algorithm 4 fast paths)."""

import pytest

from repro.core.conflict_table import ConflictTable
from repro.core.decisions import (
    FastDecisionKind,
    detect_pairwise_cover,
    detect_polyhedron_witness,
    try_fast_decisions,
)
from repro.model import Schema, Subscription


class TestPairwiseCover:
    def test_detects_covering_row(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (10, 20), "x2": (10, 20)})
        small = Subscription.from_constraints(schema_2d, {"x1": (0, 5), "x2": (0, 5)})
        coverer = Subscription.from_constraints(schema_2d, {"x1": (0, 30), "x2": (0, 30)})
        table = ConflictTable(s, [small, coverer])
        decision = detect_pairwise_cover(table)
        assert decision is not None
        assert decision.kind is FastDecisionKind.PAIRWISE_COVER
        assert decision.covered
        assert decision.covering_row == 1

    def test_absent_when_only_jointly_covered(
        self, table3_subscription, table3_candidates
    ):
        table = ConflictTable(table3_subscription, table3_candidates)
        assert detect_pairwise_cover(table) is None

    def test_equal_subscription_counts_as_cover(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (10, 20)})
        twin = Subscription.from_constraints(schema_2d, {"x1": (10, 20)})
        table = ConflictTable(s, [twin])
        decision = detect_pairwise_cover(table)
        assert decision is not None and decision.covered


class TestPolyhedronWitnessCondition:
    def test_fires_when_every_row_leaves_much_uncovered(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 100), "x2": (0, 100)})
        # Both candidates are small boxes strictly inside s: every row has
        # 4 defined entries, so the sorted condition t_(j) >= j holds.
        a = Subscription.from_constraints(schema_2d, {"x1": (10, 20), "x2": (10, 20)})
        b = Subscription.from_constraints(schema_2d, {"x1": (60, 70), "x2": (60, 70)})
        table = ConflictTable(s, [a, b])
        decision = detect_polyhedron_witness(table)
        assert decision is not None
        assert not decision.covered
        assert decision.kind is FastDecisionKind.POLYHEDRON_WITNESS

    def test_silent_on_covered_example(self, table3_subscription, table3_candidates):
        table = ConflictTable(table3_subscription, table3_candidates)
        assert detect_polyhedron_witness(table) is None

    def test_silent_on_empty_table(self, table3_subscription):
        table = ConflictTable(table3_subscription, [])
        assert detect_polyhedron_witness(table) is None

    def test_silent_when_counts_too_small(
        self, table6_subscription, table6_candidates
    ):
        # The Table 6 example is a non-cover but t = [1, 2]; the sorted
        # condition needs t_(1) >= 1 and t_(2) >= 2, which holds here...
        table = ConflictTable(table6_subscription, table6_candidates)
        decision = detect_polyhedron_witness(table)
        # ...so the fast path may legitimately decide it.  Verify it is
        # consistent with the ground truth (non-cover) if it fires.
        if decision is not None:
            assert not decision.covered

    def test_correct_on_random_instances(self, schema_small, rng):
        """Whenever the sorted-row condition fires, the instance is a true
        non-cover (checked against the exact oracle)."""
        from repro.core.exact import exact_group_cover
        from repro.workloads.generators import (
            random_subscription,
            random_subscription_intersecting,
        )

        fired = 0
        for _ in range(50):
            s = random_subscription(schema_small, rng)
            candidates = [
                random_subscription_intersecting(s, rng, cover_probability=0.2)
                for _ in range(4)
            ]
            table = ConflictTable(s, candidates)
            decision = detect_polyhedron_witness(table)
            if decision is not None:
                fired += 1
                assert exact_group_cover(s, candidates) is False
        assert fired > 0  # the scenario should trigger the condition sometimes


class TestTryFastDecisions:
    def test_prefers_pairwise_cover(self, schema_2d):
        s = Subscription.from_constraints(schema_2d, {"x1": (10, 20), "x2": (10, 20)})
        coverer = Subscription.from_constraints(schema_2d, {"x1": (0, 30), "x2": (0, 30)})
        table = ConflictTable(s, [coverer])
        decision = try_fast_decisions(table)
        assert decision.kind is FastDecisionKind.PAIRWISE_COVER

    def test_returns_none_when_undecidable(
        self, table3_subscription, table3_candidates
    ):
        table = ConflictTable(table3_subscription, table3_candidates)
        assert try_fast_decisions(table) is None
