"""Broker-overlay tests on cyclic topologies and larger end-to-end runs.

Reverse-path forwarding is usually described on trees (Figure 1); these
tests exercise the simulator on topologies with cycles (meshes) and larger
random workloads, checking that

* subscription flooding terminates and reaches every broker exactly once,
* publications are never delivered twice to the same subscriber,
* the covering policies keep the delivery behaviour of flooding (pair-wise
  exactly, group up to the delta-bounded loss),
* traffic ordering flooding ≥ pair-wise ≥ group also holds on meshes.
"""

import numpy as np
import pytest

from repro.broker import BrokerNetwork, CoveringPolicy, grid_topology
from repro.model import Publication, Schema, Subscription
from repro.workloads.generators import publication_inside, random_subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(3, 0, 1_000)


class TestCyclicTopology:
    def test_subscription_reaches_every_broker_once(self, schema):
        network = BrokerNetwork(grid_topology(3, 3), policy=CoveringPolicy.NONE)
        network.attach_client("sub", "B1")
        network.subscribe(
            "sub", Subscription.from_constraints(schema, {"x1": (0, 100)})
        )
        # Every broker stores the subscription exactly once despite cycles.
        assert all(size == 1 for size in network.routing_table_sizes().values())

    def test_publication_delivered_exactly_once(self, schema):
        network = BrokerNetwork(grid_topology(3, 3), policy=CoveringPolicy.NONE)
        network.attach_client("sub", "B1")
        network.attach_client("pub", "B9")
        subscription = Subscription.from_constraints(schema, {"x1": (0, 100)})
        network.subscribe("sub", subscription)
        delivered = network.publish(
            "pub",
            Publication.from_values(schema, {"x1": 50, "x2": 0, "x3": 0}),
        )
        assert len(delivered) == 1
        assert network.metrics.notifications == 1
        assert network.metrics.missed_notifications == 0

    def test_non_matching_publication_not_delivered(self, schema):
        network = BrokerNetwork(grid_topology(2, 3), policy=CoveringPolicy.NONE)
        network.attach_client("sub", "B1")
        network.attach_client("pub", "B6")
        network.subscribe(
            "sub", Subscription.from_constraints(schema, {"x1": (0, 100)})
        )
        delivered = network.publish(
            "pub",
            Publication.from_values(schema, {"x1": 900, "x2": 0, "x3": 0}),
        )
        assert delivered == []
        assert network.metrics.expected_notifications == 0


class TestEndToEndPolicies:
    @pytest.mark.parametrize("policy", [CoveringPolicy.PAIRWISE, CoveringPolicy.GROUP])
    def test_mesh_workload_delivery(self, schema, policy):
        """Random workload on a 3x3 mesh: covering policies lose (almost)
        nothing and never exceed flooding traffic."""
        rng = np.random.default_rng(7)
        flooding = BrokerNetwork(grid_topology(3, 3), policy=CoveringPolicy.NONE, rng=1)
        covered = BrokerNetwork(grid_topology(3, 3), policy=policy, rng=1, delta=1e-9)
        broker_ids = flooding.broker_ids

        subscriptions = []
        for index in range(25):
            client = f"client-{index}"
            broker = broker_ids[index % len(broker_ids)]
            flooding.attach_client(client, broker)
            covered.attach_client(client, broker)
            subscription = random_subscription(
                schema, rng, width_fraction=(0.2, 0.6)
            ).replace(subscriber=client)
            subscriptions.append(subscription)
            flooding.subscribe(client, subscription.replace(subscription_id=f"f-{index}"))
            covered.subscribe(client, subscription.replace(subscription_id=f"c-{index}"))

        publisher = "publisher"
        flooding.attach_client(publisher, broker_ids[0])
        covered.attach_client(publisher, broker_ids[0])
        for index in range(40):
            if index % 2 == 0:
                publication = publication_inside(
                    subscriptions[index % len(subscriptions)], rng
                )
            else:
                values = [
                    schema.domain(j).sample(schema.domain(j).full_interval(), rng)
                    for j in range(schema.m)
                ]
                publication = Publication(schema, values)
            flooding.publish(
                publisher,
                Publication(schema, publication.values, publication_id=f"fp-{index}"),
            )
            covered.publish(
                publisher,
                Publication(schema, publication.values, publication_id=f"cp-{index}"),
            )

        # Flooding loses nothing by definition; pair-wise covering is
        # lossless, the probabilistic group policy may lose a tiny fraction.
        assert flooding.metrics.missed_notifications == 0
        if policy is CoveringPolicy.PAIRWISE:
            assert covered.metrics.missed_notifications == 0
        else:
            assert covered.metrics.delivery_ratio >= 0.95
        # Covering can only reduce subscription traffic.
        assert (
            covered.metrics.subscription_messages
            <= flooding.metrics.subscription_messages
        )
        # Expected notifications are identical because the workload is.
        assert (
            covered.metrics.expected_notifications
            == flooding.metrics.expected_notifications
        )
