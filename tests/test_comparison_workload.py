"""Unit tests for the Section 6.4 comparison workload and domain workloads."""

import numpy as np
import pytest

from repro.model import Schema
from repro.workloads.bike_rental import BikeRentalWorkload, bike_rental_schema
from repro.workloads.comparison import ComparisonWorkload
from repro.workloads.grid import GridWorkload, grid_schema


class TestComparisonWorkload:
    @pytest.fixture
    def workload(self):
        schema = Schema.uniform_integer(10, 0, 10_000)
        return ComparisonWorkload(schema, rng=42)

    def test_subscriptions_are_valid(self, workload):
        for subscription in workload.subscriptions(100):
            assert subscription.size() > 0

    def test_constrained_fraction_bounds_attribute_count(self, workload):
        counts = [
            len(sub.constrained_attributes) for sub in workload.subscriptions(200)
        ]
        # constrained_fraction = 0.6 with m = 10: between 1 and 6 attributes,
        # with the full range of generality actually exercised.
        assert min(counts) >= 1
        assert max(counts) <= 6
        assert len(set(counts)) > 2

    def test_popular_attributes_constrained_more_often(self):
        schema = Schema.uniform_integer(10, 0, 10_000)
        workload = ComparisonWorkload(schema, rng=7, constrained_fraction=0.3)
        frequency = {name: 0 for name in schema.names}
        for subscription in workload.subscriptions(400):
            for name in subscription.constrained_attributes:
                frequency[name] += 1
        # Zipf(2.0) popularity: the most popular attribute is constrained far
        # more often than the tail attributes.
        assert frequency["x1"] > 3 * frequency["x9"]

    def test_stream_is_lazy_and_counts(self, workload):
        stream = workload.stream(5)
        assert len(list(stream)) == 5

    def test_publications_valid_and_low_biased(self, workload):
        publications = workload.publications(300)
        values = np.array([p.values[0] for p in publications])
        assert values.min() >= 0
        assert values.max() <= 10_000
        assert np.median(values) < 5_000

    def test_reproducible_with_seed(self):
        schema = Schema.uniform_integer(5, 0, 1_000)
        a = ComparisonWorkload(schema, rng=3).subscriptions(10)
        b = ComparisonWorkload(schema, rng=3).subscriptions(10)
        for left, right in zip(a, b):
            assert left.same_box(right)

    def test_subscription_overlap_exists(self, workload):
        """Popularity-skewed interests must overlap reasonably often,
        otherwise the covering comparison would be meaningless."""
        subscriptions = workload.subscriptions(80)
        overlaps = 0
        for i, a in enumerate(subscriptions):
            for b in subscriptions[i + 1:]:
                if a.intersects(b):
                    overlaps += 1
        assert overlaps > 0


class TestBikeRentalWorkload:
    def test_schema_matches_table1(self):
        schema = bike_rental_schema()
        assert schema.names == ("bID", "size", "brand", "rpID", "date")
        assert schema.m == 5

    def test_subscriptions_and_publications(self):
        workload = BikeRentalWorkload(rng=1)
        subscriptions = workload.subscriptions(20)
        publications = workload.publications(50)
        assert len({s.subscriber for s in subscriptions}) == 20
        assert all(s.size() > 0 for s in subscriptions)
        assert all(p.value("size") >= 14 for p in publications)

    def test_matching_publication_always_matches(self):
        workload = BikeRentalWorkload(rng=5)
        for subscription in workload.subscriptions(20):
            publication = workload.matching_publication(subscription)
            assert subscription.matches(publication)


class TestGridWorkload:
    def test_schema_matches_table2(self):
        schema = grid_schema()
        assert schema.names == ("CPUcycles", "disk", "memory", "service", "time")

    def test_service_subscriptions_valid(self):
        workload = GridWorkload(rng=2)
        services = workload.service_subscriptions(20)
        assert all(s.size() > 0 for s in services)
        assert all(s.subscriber.startswith("service-") for s in services)

    def test_matching_job_always_fits(self):
        workload = GridWorkload(rng=3)
        for service in workload.service_subscriptions(20):
            job = workload.matching_job(service)
            assert service.matches(job)

    def test_random_jobs_are_valid(self):
        workload = GridWorkload(rng=3)
        jobs = workload.job_publications(50)
        assert all(1 <= job.value("memory") <= 64 for job in jobs)
