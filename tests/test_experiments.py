"""Integration tests for the experiment harness (smoke presets).

Each figure runner is executed with its tiny ``smoke()`` preset and the
qualitative properties the paper reports are asserted:

* Figure 6/8 — MCS removes the (vast) majority of redundant subscriptions;
* Figure 7/9 — the theoretical ``d`` after MCS is no larger than without;
* Figure 10 — the actual iterations with MCS are (near) zero;
* Figure 11 — actual iterations decrease as the gap grows;
* Figure 12 — false decisions do not increase with the gap size;
* Figure 13/14 — group covering keeps the active set no larger than
  pair-wise covering (ratio ≤ 1);
* Eq. 2 — simulation agrees with the closed form.
"""

import math

import pytest

from repro.experiments import (
    ChainConfig,
    ComparisonConfig,
    ExtremeNonCoverConfig,
    NonCoverConfig,
    RedundantCoveringConfig,
    run_chain_delivery,
    run_comparison,
    run_extreme_non_cover,
    run_non_cover,
    run_redundant_covering,
)
from repro.experiments.series import ResultTable


class TestRedundantCovering:
    @pytest.fixture(scope="class")
    def results(self):
        return run_redundant_covering(RedundantCoveringConfig.smoke())

    def test_returns_both_figures(self, results):
        assert set(results) == {"fig6", "fig7"}
        assert isinstance(results["fig6"], ResultTable)

    def test_reduction_is_high(self, results):
        for series in results["fig6"].series.values():
            assert all(value >= 0.5 for value in series.values)
            assert all(value <= 1.0 for value in series.values)

    def test_mcs_reduces_theoretical_d(self, results):
        fig7 = results["fig7"]
        plain = fig7.column("m=5")
        reduced = fig7.column("m=5;MCS")
        assert all(r <= p + 1e-9 for p, r in zip(plain, reduced))

    def test_render_and_csv(self, results):
        text = results["fig6"].render()
        assert "Figure 6" in text and "m=5" in text
        csv = results["fig7"].to_csv()
        assert csv.startswith("k,")


class TestNonCover:
    @pytest.fixture(scope="class")
    def results(self):
        return run_non_cover(NonCoverConfig.smoke())

    def test_returns_three_figures(self, results):
        assert set(results) == {"fig8", "fig9", "fig10"}

    def test_reduction_close_to_total(self, results):
        for series in results["fig8"].series.values():
            assert all(value >= 0.8 for value in series.values)

    def test_actual_iterations_with_mcs_near_zero(self, results):
        fig10 = results["fig10"]
        assert all(value <= 1.0 for value in fig10.column("m=5;MCS"))

    def test_actual_iterations_far_below_theoretical(self, results):
        fig9 = results["fig9"]
        fig10 = results["fig10"]
        for label in ("m=5",):
            theoretical_log = fig9.column(label)
            actual = fig10.column(label)
            for log_d, iterations in zip(theoretical_log, actual):
                if math.isfinite(log_d):
                    assert iterations <= 10 ** log_d


class TestExtremeNonCover:
    @pytest.fixture(scope="class")
    def results(self):
        return run_extreme_non_cover(ExtremeNonCoverConfig.smoke())

    def test_returns_both_figures(self, results):
        assert set(results) == {"fig11", "fig12"}

    def test_iterations_decrease_with_gap(self, results):
        fig11 = results["fig11"]
        series = fig11.column("error=0.001")
        assert series[0] >= series[-1]

    def test_false_decisions_do_not_increase_with_gap(self, results):
        fig12 = results["fig12"]
        series = fig12.column("error=0.001")
        assert series[0] >= series[-1]
        assert all(value >= 0 for value in series)

    def test_scaled_column_present(self, results):
        assert "error=0.001/3000" in results["fig12"].series


class TestComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return run_comparison(ComparisonConfig.smoke())

    def test_returns_both_figures(self, results):
        assert set(results) == {"fig13", "fig14"}

    def test_group_never_larger_than_pairwise(self, results):
        fig14 = results["fig14"]
        for series in fig14.series.values():
            assert all(value <= 1.0 + 1e-9 for value in series.values)

    def test_active_sets_grow_monotonically(self, results):
        fig13 = results["fig13"]
        for series in fig13.series.values():
            assert all(
                later >= earlier
                for earlier, later in zip(series.values, series.values[1:])
            )

    def test_covering_reduces_below_total(self, results):
        fig13 = results["fig13"]
        total = ComparisonConfig.smoke().total_subscriptions
        for name, series in fig13.series.items():
            assert series.values[-1] <= total


class TestChain:
    @pytest.fixture(scope="class")
    def results(self):
        return run_chain_delivery(ChainConfig.smoke())

    def test_simulation_matches_analytic(self, results):
        table = results["eq2"]
        analytic = table.column("rho=0.1 (analytic)")
        simulated = table.column("rho=0.1 (simulated)")
        for a, s in zip(analytic, simulated):
            assert s == pytest.approx(a, abs=0.1)

    def test_delivery_probability_grows_with_chain_length(self, results):
        values = results["eq2"].column("rho=0.1 (analytic)")
        assert values == sorted(values)
