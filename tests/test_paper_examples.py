"""End-to-end reproduction of the paper's worked examples.

* Table 1 / Table 2 — the motivating bike-rental and Grid examples,
  including the stated matches (p1 matches s1, p2 matches s2).
* Table 3 / Table 5 / Figure 2 — the 2-D group-cover example and its
  conflict table.
* Table 6 / Figure 3 — the non-cover example with its polyhedron witness.
* Table 7 / Table 8 / Figure 4 — the conflict-free example driving MCS.
"""

import pytest

from repro.core import (
    ConflictTable,
    PairwiseCoverageChecker,
    SubsumptionChecker,
    exact_group_cover,
    minimized_cover_set,
)
from repro.model import Publication, Subscription, SubscriptionBuilder
from repro.workloads.bike_rental import bike_rental_schema
from repro.workloads.grid import grid_schema


class TestTable1BikeRental:
    @pytest.fixture
    def schema(self):
        return bike_rental_schema()

    @pytest.fixture
    def s1(self, schema):
        return (
            SubscriptionBuilder(schema, subscriber="weekend-rider")
            .between("bID", 1000, 1999)
            .equals("size", 19)
            .equals("brand", "X")
            .between("rpID", 820, 840)
            .between("date", "2006-03-31T16:00:00", "2006-03-31T20:00:00")
            .build()
        )

    @pytest.fixture
    def s2(self, schema):
        return (
            SubscriptionBuilder(schema, subscriber="lunch-break")
            .between("bID", 1, 1999)
            .between("size", 17, 19)
            .between("rpID", 10, 12)
            .between("date", "2006-03-31T12:00:00", "2006-03-31T14:00:00")
            .build()
        )

    @pytest.fixture
    def p1(self, schema):
        return Publication.from_values(
            schema,
            {
                "bID": 1036,
                "size": 19,
                "brand": "X",
                "rpID": 825,
                "date": "2006-03-31T18:23:05",
            },
        )

    @pytest.fixture
    def p2(self, schema):
        return Publication.from_values(
            schema,
            {
                "bID": 1035,
                "size": 17,
                "brand": "Y",
                "rpID": 11,
                "date": "2006-03-31T12:23:05",
            },
        )

    def test_p1_matches_s1_only(self, s1, s2, p1):
        assert s1.matches(p1)
        assert not s2.matches(p1)

    def test_p2_matches_s2_only(self, s1, s2, p2):
        assert s2.matches(p2)
        assert not s1.matches(p2)

    def test_s1_and_s2_do_not_cover_each_other(self, s1, s2):
        assert not s1.covers(s2)
        assert not s2.covers(s1)


class TestTable2Grid:
    def test_service_matches_fitting_job(self):
        schema = grid_schema()
        service = Subscription.from_constraints(
            schema,
            {
                "CPUcycles": (3000, 3500),
                "disk": (40, 50),
                "memory": 1,
                "service": "a.service.org",
                "time": ("2006-03-31T16:00:00", "2006-03-31T20:00:00"),
            },
        )
        fitting_job = Publication.from_values(
            schema,
            {
                "CPUcycles": 3500,
                "disk": 45,
                "memory": 1,
                "service": "a.service.org",
                "time": "2006-03-31T16:00:00",
            },
        )
        misfitting_job = Publication.from_values(
            schema,
            {
                "CPUcycles": 1035,
                "disk": 45,
                "memory": 1,
                "service": "a.service.org",
                "time": "2006-03-31T12:23:05",
            },
        )
        assert service.matches(fitting_job)
        assert not service.matches(misfitting_job)


class TestTable3GroupCover:
    def test_union_covers_but_no_single_subscription_does(
        self, table3_subscription, table3_candidates
    ):
        s1, s2 = table3_candidates
        assert not s1.covers(table3_subscription)
        assert not s2.covers(table3_subscription)
        assert exact_group_cover(table3_subscription, table3_candidates)

    def test_pairwise_baseline_fails_probabilistic_succeeds(
        self, table3_subscription, table3_candidates
    ):
        baseline = PairwiseCoverageChecker.check(
            table3_subscription, table3_candidates
        )
        assert not baseline.covered
        checker = SubsumptionChecker(delta=1e-9, rng=42)
        assert checker.check(table3_subscription, table3_candidates).covered

    def test_conflict_table_matches_table5(
        self, table3_subscription, table3_candidates
    ):
        table = ConflictTable(table3_subscription, table3_candidates)
        # Exactly one defined entry per row, as printed in Table 5.
        assert table.row_defined_counts.tolist() == [1, 1]
        rendered = table.render()
        assert "x1>850" in rendered
        assert "x1<840" in rendered


class TestTable6NonCover:
    def test_not_covered_and_witness_beyond_870(
        self, table6_subscription, table6_candidates
    ):
        assert not exact_group_cover(table6_subscription, table6_candidates)
        checker = SubsumptionChecker(delta=1e-9, rng=7)
        result = checker.check(table6_subscription, table6_candidates)
        assert not result.covered
        if result.witness_point is not None:
            assert result.witness_point[0] > 870


class TestTable8ConflictFree:
    def test_mcs_reduces_to_s1_s2(self, table3_subscription, table7_candidates):
        table = ConflictTable(table3_subscription, table7_candidates)
        assert table.conflict_free_counts().tolist() == [0, 0, 2]
        reduction = minimized_cover_set(table)
        assert [c.id for c in reduction.kept] == ["s1", "s2"]

    def test_answer_unchanged_after_reduction(
        self, table3_subscription, table7_candidates
    ):
        table = ConflictTable(table3_subscription, table7_candidates)
        reduction = minimized_cover_set(table)
        assert exact_group_cover(table3_subscription, table7_candidates) == (
            exact_group_cover(table3_subscription, list(reduction.kept))
        )
