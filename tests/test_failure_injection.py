"""Failure-injection tests.

The probabilistic algorithm's only failure mode is declaring a
non-covered subscription covered, which in a distributed deployment means
the subscription is not forwarded and matching publications published
elsewhere are lost.  These tests *force* that failure (with a checker stub
that always answers "covered") and verify that

* the simulator's global oracle detects and counts the lost notifications,
* the loss is confined to publications entering the network beyond the
  broker that made the wrong decision, and
* with a sound checker the same workload loses nothing.

A second group injects malformed inputs into the public API and checks the
error behaviour is deliberate (exceptions, not silent corruption).
"""

import numpy as np
import pytest

from repro.broker import BrokerNetwork, CoveringPolicy, line_topology
from repro.core.results import Answer, DecisionMethod, SubsumptionResult
from repro.core.store import CoveringPolicyName, SubscriptionStore
from repro.core.subsumption import SubsumptionChecker
from repro.model import Publication, Schema, Subscription
from repro.model.errors import ValidationError


class AlwaysCoveredChecker(SubsumptionChecker):
    """A deliberately broken checker: every subscription is 'covered'."""

    def check(self, subscription, candidates):  # noqa: D102 - see class docstring
        candidates = list(candidates)
        if not candidates:
            return super().check(subscription, candidates)
        return SubsumptionResult(
            answer=Answer.PROBABLY_COVERED,
            method=DecisionMethod.RSPC_EXHAUSTED,
            original_set_size=len(candidates),
            reduced_set_size=len(candidates),
            rho_w=0.0,
            theoretical_iterations=0.0,
            iterations_performed=0,
            error_bound=1.0,
        )


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def box(schema, x1, x2, sid=None):
    return Subscription.from_constraints(
        schema, {"x1": x1, "x2": x2}, subscription_id=sid
    )


class TestInjectedCoveringErrors:
    def _network(self, checker_factory, schema):
        network = BrokerNetwork(
            line_topology(4), policy=CoveringPolicy.GROUP, rng=0
        )
        # Replace every broker's checker with the injected one.
        for broker in network.brokers.values():
            broker.checker = checker_factory()
        network.attach_client("subscriber", "B1")
        network.attach_client("publisher", "B4")
        return network

    def test_lost_notifications_are_detected(self, schema):
        network = self._network(AlwaysCoveredChecker, schema)
        # The first subscription reaches everyone (empty candidate sets are
        # never 'covered'); the second is erroneously suppressed although it
        # is NOT covered by the first.
        network.subscribe("subscriber", box(schema, (0, 20), (0, 20), sid="first"))
        network.subscribe("subscriber", box(schema, (50, 70), (50, 70), sid="second"))
        assert network.metrics.suppressed_subscriptions > 0

        # A matching publication enters at the far end of the chain: the
        # reverse path for "second" was never built, so it cannot reach B1.
        network.publish(
            "publisher",
            Publication.from_values(schema, {"x1": 60, "x2": 60}, publication_id="p"),
        )
        assert network.metrics.expected_notifications == 1
        assert network.metrics.notifications == 0
        assert network.metrics.missed_notifications == 1
        assert network.metrics.delivery_ratio == 0.0
        assert len(network.metrics.missed) == 1
        assert network.metrics.missed[0].subscription_id == "second"

    def test_loss_is_local_to_the_pruned_direction(self, schema):
        network = self._network(AlwaysCoveredChecker, schema)
        network.subscribe("subscriber", box(schema, (0, 20), (0, 20), sid="first"))
        network.subscribe("subscriber", box(schema, (50, 70), (50, 70), sid="second"))
        # A publication issued at the subscriber's own broker is still
        # delivered: the erroneous decision only pruned the *propagation*.
        network.attach_client("local-publisher", "B1")
        network.publish(
            "local-publisher",
            Publication.from_values(schema, {"x1": 60, "x2": 60}),
        )
        assert network.metrics.notifications == 1
        assert network.metrics.missed_notifications == 0

    def test_sound_checker_loses_nothing(self, schema):
        network = self._network(
            lambda: SubsumptionChecker(delta=1e-9, max_iterations=2000, rng=1), schema
        )
        network.subscribe("subscriber", box(schema, (0, 20), (0, 20), sid="first"))
        network.subscribe("subscriber", box(schema, (50, 70), (50, 70), sid="second"))
        network.publish(
            "publisher",
            Publication.from_values(schema, {"x1": 60, "x2": 60}),
        )
        assert network.metrics.missed_notifications == 0
        assert network.metrics.delivery_ratio == 1.0


class TestInjectedStoreErrors:
    def test_store_with_broken_checker_still_matches_locally(self, schema):
        """Even when every subscription is wrongly 'covered', local matching
        through Algorithm 5's covered-set fallback can still notify, as long
        as some active subscription matches."""
        store = SubscriptionStore(
            policy=CoveringPolicyName.GROUP, checker=AlwaysCoveredChecker()
        )
        store.add(box(schema, (0, 90), (0, 90), sid="broad"))
        store.add(box(schema, (10, 20), (10, 20), sid="narrow"))
        assert store.active_count == 1  # "narrow" was suppressed
        assert store.total_count == 2


class TestMalformedInputs:
    def test_publication_against_wrong_schema(self, schema):
        other = Schema.uniform_integer(3, 0, 10, name="other")
        subscription = Subscription.whole_space(schema)
        publication = Publication(other, [1, 1, 1])
        with pytest.raises(ValidationError):
            subscription.matches(publication)

    def test_checker_rejects_cross_schema_candidates(self, schema):
        other = Schema.uniform_integer(2, 0, 10, name="other")
        checker = SubsumptionChecker(rng=0)
        with pytest.raises(ValidationError):
            checker.check(
                Subscription.whole_space(schema),
                [Subscription.whole_space(other)],
            )

    def test_network_rejects_publishing_for_unknown_client(self, schema):
        network = BrokerNetwork(line_topology(2), policy=CoveringPolicy.NONE)
        with pytest.raises(KeyError):
            network.publish(
                "nobody", Publication.from_values(schema, {"x1": 1, "x2": 1})
            )
