"""Unit tests for :mod:`repro.workloads.generators` and distributions."""

import numpy as np
import pytest

from repro.model import Schema
from repro.workloads.distributions import (
    normal_width,
    pareto_center,
    sample_zipf_ranks,
    zipf_weights,
)
from repro.workloads.generators import (
    expand_to_cover,
    publication_inside,
    random_interval,
    random_publication,
    random_subscription,
    random_subscription_intersecting,
    shrink_inside,
    slab_partition,
)


@pytest.fixture
def schema():
    return Schema.uniform_integer(4, 0, 1000)


class TestDistributions:
    def test_zipf_weights_sum_to_one_and_decrease(self):
        weights = zipf_weights(10, skew=2.0)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(9))

    def test_zipf_weights_invalid(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, skew=0)

    def test_sample_zipf_ranks_prefers_small_ranks(self, rng):
        ranks = sample_zipf_ranks(20, 2000, skew=2.0, rng=rng)
        assert ranks.min() >= 0 and ranks.max() < 20
        assert (ranks == 0).mean() > (ranks == 10).mean()

    def test_pareto_center_within_bounds(self, rng):
        for _ in range(200):
            value = pareto_center(100.0, 200.0, skew=1.0, rng=rng)
            assert 100.0 <= value <= 200.0

    def test_pareto_center_biased_low(self, rng):
        values = [pareto_center(0.0, 1.0, rng=rng) for _ in range(2000)]
        assert np.mean(values) < 0.5

    def test_pareto_center_invalid(self):
        with pytest.raises(ValueError):
            pareto_center(10, 5)

    def test_normal_width_clipped(self, rng):
        for _ in range(200):
            width = normal_width(10.0, 5.0, minimum=2.0, maximum=12.0, rng=rng)
            assert 2.0 <= width <= 12.0

    def test_normal_width_invalid(self):
        with pytest.raises(ValueError):
            normal_width(0.0, 1.0)
        with pytest.raises(ValueError):
            normal_width(1.0, -1.0)


class TestRandomGenerators:
    def test_random_interval_width_band(self, schema, rng):
        domain = schema.domain(0)
        for _ in range(100):
            interval = random_interval(domain, rng, width_fraction=(0.1, 0.2))
            assert not interval.is_empty
            assert domain.lower_bound <= interval.low <= interval.high <= domain.upper_bound

    def test_random_subscription_valid(self, schema, rng):
        for _ in range(50):
            subscription = random_subscription(schema, rng)
            assert subscription.size() > 0

    def test_random_subscription_intersecting(self, schema, rng):
        reference = random_subscription(schema, rng)
        for _ in range(100):
            other = random_subscription_intersecting(reference, rng)
            assert reference.intersects(other)

    def test_random_subscription_cover_probability_one(self, schema, rng):
        reference = random_subscription(schema, rng, width_fraction=(0.1, 0.2))
        covered = random_subscription_intersecting(
            reference, rng, cover_probability=1.0
        )
        assert covered.covers(reference)

    def test_random_publication_in_domain(self, schema, rng):
        lows, highs = schema.full_bounds()
        for _ in range(50):
            publication = random_publication(schema, rng)
            assert np.all(publication.values >= lows)
            assert np.all(publication.values <= highs)

    def test_publication_inside(self, schema, rng):
        subscription = random_subscription(schema, rng)
        for _ in range(50):
            publication = publication_inside(subscription, rng)
            assert subscription.matches(publication)


class TestSlabPartition:
    def test_slabs_cover_exactly(self, schema, rng):
        from repro.core.exact import exact_group_cover

        subscription = random_subscription(schema, rng, width_fraction=(0.2, 0.4))
        slabs = slab_partition(subscription, 7, attribute=0)
        assert exact_group_cover(subscription, slabs)
        # and every slab is inside the subscription
        assert all(subscription.covers(slab) for slab in slabs)

    def test_no_single_slab_covers(self, schema, rng):
        subscription = random_subscription(schema, rng, width_fraction=(0.2, 0.4))
        slabs = slab_partition(subscription, 5, attribute=0)
        assert len(slabs) == 5
        assert not any(slab.covers(subscription) for slab in slabs)

    def test_slabs_are_disjoint_on_discrete_domains(self, schema, rng):
        subscription = random_subscription(schema, rng, width_fraction=(0.2, 0.4))
        slabs = slab_partition(subscription, 4, attribute=1)
        for i, a in enumerate(slabs):
            for b in slabs[i + 1:]:
                assert not a.intersects(b)

    def test_more_slabs_than_points(self, schema):
        from repro.model import Subscription

        narrow = Subscription.from_constraints(schema, {"x1": (10, 12)})
        slabs = slab_partition(narrow, 10, attribute=0)
        assert len(slabs) == 3

    def test_single_slab_is_the_box(self, schema, rng):
        subscription = random_subscription(schema, rng)
        slabs = slab_partition(subscription, 1, attribute=0)
        assert len(slabs) == 1
        assert slabs[0].same_box(subscription)

    def test_invalid_count(self, schema, rng):
        subscription = random_subscription(schema, rng)
        with pytest.raises(ValueError):
            slab_partition(subscription, 0)

    def test_continuous_domain_partition(self):
        from repro.model import ContinuousDomain, Subscription

        schema = Schema([("x", ContinuousDomain(0.0, 1.0)), ("y", ContinuousDomain(0.0, 1.0))])
        subscription = Subscription.from_constraints(schema, {"x": (0.2, 0.8)})
        slabs = slab_partition(subscription, 3, attribute=0)
        assert len(slabs) == 3
        assert slabs[0].interval(0).low == pytest.approx(0.2)
        assert slabs[-1].interval(0).high == pytest.approx(0.8)


class TestExpandShrink:
    def test_expand_to_cover(self, schema, rng):
        subscription = random_subscription(schema, rng)
        bigger = expand_to_cover(subscription)
        assert bigger.covers(subscription)

    def test_shrink_inside(self, schema, rng):
        subscription = random_subscription(schema, rng, width_fraction=(0.3, 0.5))
        for _ in range(20):
            smaller = shrink_inside(subscription, rng)
            assert subscription.covers(smaller)
            assert smaller.size() > 0
