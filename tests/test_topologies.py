"""Unit tests for :mod:`repro.broker.topologies`."""

import networkx as nx
import pytest

from repro.broker.topologies import (
    grid_topology,
    line_topology,
    random_tree_topology,
    star_topology,
)


def as_graph(edges):
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return graph


class TestLine:
    def test_edge_count(self):
        assert len(line_topology(5)) == 4

    def test_single_broker(self):
        assert line_topology(1) == []

    def test_is_a_path(self):
        graph = as_graph(line_topology(6))
        assert nx.is_connected(graph)
        degrees = sorted(dict(graph.degree()).values())
        assert degrees == [1, 1, 2, 2, 2, 2]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            line_topology(0)


class TestStar:
    def test_hub_degree(self):
        graph = as_graph(star_topology(7))
        assert graph.degree("B1") == 6
        assert nx.is_connected(graph)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            star_topology(0)


class TestGrid:
    def test_edge_count(self):
        # rows*(cols-1) + cols*(rows-1)
        assert len(grid_topology(3, 4)) == 3 * 3 + 4 * 2

    def test_connected(self):
        graph = as_graph(grid_topology(4, 4))
        assert nx.is_connected(graph)
        assert graph.number_of_nodes() == 16

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            grid_topology(0, 3)


class TestRandomTree:
    def test_is_a_tree(self, rng):
        edges = random_tree_topology(20, rng)
        graph = as_graph(edges)
        assert graph.number_of_nodes() == 20
        assert graph.number_of_edges() == 19
        assert nx.is_tree(graph)

    def test_reproducible_with_seed(self):
        assert random_tree_topology(10, 5) == random_tree_topology(10, 5)

    def test_single_node(self):
        assert random_tree_topology(1) == []

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            random_tree_topology(0)
