"""Unit tests for :mod:`repro.model.builders`."""

import pytest

from repro.model import (
    CategoricalDomain,
    IntegerDomain,
    Schema,
    SubscriptionBuilder,
)
from repro.model.errors import ValidationError
from repro.model.intervals import Interval


@pytest.fixture
def schema():
    return Schema(
        [
            ("price", IntegerDomain(0, 1000)),
            ("brand", CategoricalDomain(["X", "Y", "Z"])),
            ("stock", IntegerDomain(0, 50)),
        ]
    )


class TestBuilder:
    def test_between_and_equals(self, schema):
        subscription = (
            SubscriptionBuilder(schema, subscriber="alice")
            .between("price", 100, 200)
            .equals("brand", "Y")
            .build()
        )
        assert subscription.interval("price") == Interval(100, 200)
        assert subscription.interval("brand") == Interval(1, 1)
        assert subscription.interval("stock") == Interval(0, 50)
        assert subscription.subscriber == "alice"

    def test_at_least_at_most(self, schema):
        subscription = (
            SubscriptionBuilder(schema)
            .at_least("price", 500)
            .at_most("stock", 10)
            .build()
        )
        assert subscription.interval("price") == Interval(500, 1000)
        assert subscription.interval("stock") == Interval(0, 10)

    def test_constraints_on_same_attribute_intersect(self, schema):
        subscription = (
            SubscriptionBuilder(schema)
            .at_least("price", 100)
            .at_most("price", 300)
            .between("price", 0, 250)
            .build()
        )
        assert subscription.interval("price") == Interval(100, 250)

    def test_unsatisfiable_conjunction_rejected(self, schema):
        builder = SubscriptionBuilder(schema).at_least("price", 500)
        with pytest.raises(ValidationError):
            builder.at_most("price", 100)

    def test_one_of_contiguous_labels(self, schema):
        subscription = SubscriptionBuilder(schema).one_of("brand", ["X", "Y"]).build()
        assert subscription.interval("brand") == Interval(0, 1)

    def test_one_of_requires_categorical(self, schema):
        with pytest.raises(ValidationError):
            SubscriptionBuilder(schema).one_of("price", [1, 2])

    def test_any_resets_nothing(self, schema):
        subscription = SubscriptionBuilder(schema).any("price").build()
        assert not subscription.constrains("price")

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(ValidationError):
            SubscriptionBuilder(schema).equals("colour", "red")

    def test_metadata_and_id(self, schema):
        subscription = (
            SubscriptionBuilder(schema, subscription_id="special")
            .with_metadata(channel="email")
            .build()
        )
        assert subscription.id == "special"
        assert subscription.metadata == {"channel": "email"}

    def test_builder_matches_table1_example(self):
        """The s1 subscription of Table 1 expressed through the builder."""
        from repro.workloads.bike_rental import bike_rental_schema

        schema = bike_rental_schema()
        subscription = (
            SubscriptionBuilder(schema, subscriber="lady-biker")
            .between("bID", 1000, 1999)
            .equals("size", 19)
            .equals("brand", "X")
            .between("rpID", 820, 840)
            .between("date", "2006-03-31T16:00:00", "2006-03-31T20:00:00")
            .build()
        )
        assert subscription.constrains("bID")
        assert subscription.constrains("date")
        assert subscription.interval("size").is_point
