"""Differential sweep: the arena/vectorised pipeline vs the object pipeline.

The zero-copy arena path (``CandidateSet`` snapshots, sliced conflict
tables, matrix ``fc_i``/gap computations, blocked RSPC membership tests)
must return *stage-for-stage identical* :class:`SubsumptionResult`s to
the historical object-list pipeline: same answer, same deciding method,
same reduced set, same ``rho_w``/``d``, same guess counts, same witness
points.  The sweep drives both paths from identically seeded checkers
over random and adversarial instances (degenerate point intervals,
tiny discrete domains, conflicting candidate pairs, continuous domains)
and compares everything.

A second set of tests pins the verdict cache's safety property: a hit
can never survive an invalidating arena (or store) mutation, and
probabilistic verdicts are only memoised when explicitly requested.
"""

import numpy as np
import pytest

from repro.core.arena import CandidateSet, SubscriptionArena, as_candidate_set
from repro.core.conflict_table import ConflictTable
from repro.core.pairwise import PairwiseCoverageChecker
from repro.core.results import DecisionMethod
from repro.core.store import SubscriptionStore
from repro.core.subsumption import SubsumptionChecker
from repro.model import (
    CategoricalDomain,
    ContinuousDomain,
    IntegerDomain,
    Schema,
    Subscription,
)
from repro.model.errors import ValidationError
from repro.workloads.generators import random_publication, random_subscription
from repro.workloads.scenarios import (
    non_cover_scenario,
    redundant_covering_scenario,
)

SEEDS = [3, 17, 101, 20060331]


def _mixed_schema() -> Schema:
    return Schema(
        [
            ("a", IntegerDomain(0, 1_000)),
            ("b", ContinuousDomain(0.0, 50.0, resolution=1e-6)),
            ("c", CategoricalDomain(["x", "y", "z", "w"])),
            ("d", IntegerDomain(-20, 20)),
        ],
        name="mixed",
    )


def _random_instance(schema, rng, k):
    subscription = random_subscription(schema, rng, width_fraction=(0.3, 0.9))
    candidates = [
        random_subscription(schema, rng, width_fraction=(0.05, 0.7))
        for _ in range(k)
    ]
    return subscription, candidates


def _degenerate_instance(schema, rng, k):
    """Candidates collapsed to points / slivers on some attributes."""
    subscription = random_subscription(schema, rng, width_fraction=(0.5, 1.0))
    candidates = []
    for _ in range(k):
        candidate = random_subscription(schema, rng, width_fraction=(0.1, 0.6))
        lows = candidate.lows.copy()
        highs = candidate.highs.copy()
        j = int(rng.integers(0, schema.m))
        highs[j] = lows[j]  # point interval on one attribute
        candidates.append(Subscription(schema, lows, highs))
    return subscription, candidates


def _conflicting_pair_instance(schema, rng):
    """Two candidates splitting ``s`` on one attribute (conflicting entries)."""
    subscription = random_subscription(schema, rng, width_fraction=(0.6, 1.0))
    lows = subscription.lows.copy()
    highs = subscription.highs.copy()
    mid = (lows[0] + highs[0]) / 2.0
    left_highs = highs.copy()
    left_highs[0] = mid
    right_lows = lows.copy()
    right_lows[0] = mid
    left = Subscription(schema, lows, left_highs)
    right = Subscription(schema, right_lows, highs)
    extra = [
        random_subscription(schema, rng, width_fraction=(0.1, 0.5))
        for _ in range(4)
    ]
    return subscription, [left, right] + extra


def _instances():
    for seed in SEEDS:
        rng = np.random.default_rng(seed)
        integer_schema = Schema.uniform_integer(6, 0, 500)
        mixed = _mixed_schema()
        tiny = Schema.uniform_integer(3, 0, 4)  # tiny discrete domain
        yield _random_instance(integer_schema, rng, 12)
        yield _random_instance(mixed, rng, 10)
        yield _random_instance(tiny, rng, 8)
        yield _degenerate_instance(integer_schema, rng, 8)
        yield _degenerate_instance(mixed, rng, 6)
        yield _conflicting_pair_instance(integer_schema, rng)
        yield _conflicting_pair_instance(mixed, rng)
    # structured instances from the paper's evaluation scenarios
    schema = Schema.uniform_integer(8, 0, 2_000)
    covering = redundant_covering_scenario(schema, 40, 11)
    yield covering.subscription, list(covering.candidates)
    noncover = non_cover_scenario(schema, 40, 13)
    yield noncover.subscription, list(noncover.candidates)


def _assert_results_identical(a, b):
    assert a.answer == b.answer
    assert a.method == b.method
    assert a.original_set_size == b.original_set_size
    assert a.reduced_set_size == b.reduced_set_size
    assert a.rho_w == b.rho_w
    assert a.theoretical_iterations == b.theoretical_iterations
    assert a.iterations_performed == b.iterations_performed
    assert a.error_bound == b.error_bound
    assert a.truncated == b.truncated
    assert a.covering_row == b.covering_row
    if a.witness_point is None:
        assert b.witness_point is None
    else:
        assert np.array_equal(a.witness_point, b.witness_point)
    assert a.details.get("mcs_passes") == b.details.get("mcs_passes")
    assert a.details.get("mcs_kept_rows") == b.details.get("mcs_kept_rows")
    ea, eb = a.details.get("witness_estimate"), b.details.get("witness_estimate")
    if ea is not None or eb is not None:
        assert ea.per_attribute_gaps == eb.per_attribute_gaps
        assert ea.witness_size == eb.witness_size
        assert ea.subscription_size == eb.subscription_size


class TestArenaPipelineDifferential:
    def test_arena_and_object_pipelines_identical(self):
        for subscription, candidates in _instances():
            object_checker = SubsumptionChecker(
                delta=1e-4, max_iterations=64, rng=99, cache_size=0
            )
            arena_checker = SubsumptionChecker(
                delta=1e-4, max_iterations=64, rng=99, cache_size=0
            )
            arena = SubscriptionArena()
            for candidate in candidates:
                arena.add(candidate)
            snapshot = arena.select(candidates)
            object_result = object_checker.check(subscription, list(candidates))
            arena_result = arena_checker.check(subscription, snapshot)
            _assert_results_identical(object_result, arena_result)

    def test_pipelines_identical_without_mcs_and_fast_decisions(self):
        for use_mcs in (True, False):
            for use_fast in (True, False):
                for subscription, candidates in _instances():
                    kwargs = dict(
                        delta=1e-4,
                        max_iterations=32,
                        rng=7,
                        cache_size=0,
                        use_mcs=use_mcs,
                        use_fast_decisions=use_fast,
                    )
                    a = SubsumptionChecker(**kwargs).check(
                        subscription, list(candidates)
                    )
                    b = SubsumptionChecker(**kwargs).check(
                        subscription, CandidateSet(candidates)
                    )
                    _assert_results_identical(a, b)

    def test_theoretical_d_matches_check_stages(self):
        for subscription, candidates in _instances():
            for apply_mcs in (True, False, None):
                a = SubsumptionChecker(delta=1e-5, cache_size=0).theoretical_d(
                    subscription, list(candidates), apply_mcs=apply_mcs
                )
                b = SubsumptionChecker(delta=1e-5, cache_size=0).theoretical_d(
                    subscription, CandidateSet(candidates), apply_mcs=apply_mcs
                )
                assert a == b

    def test_check_batch_matches_sequential_checks(self):
        rng = np.random.default_rng(42)
        schema = Schema.uniform_integer(5, 0, 300)
        candidates = [
            random_subscription(schema, rng, width_fraction=(0.1, 0.6))
            for _ in range(10)
        ]
        subjects = [
            random_subscription(schema, rng, width_fraction=(0.2, 0.8))
            for _ in range(8)
        ]
        sequential = SubsumptionChecker(
            delta=1e-4, max_iterations=64, rng=5, cache_size=0
        )
        batched = SubsumptionChecker(
            delta=1e-4, max_iterations=64, rng=5, cache_size=0
        )
        expected = [sequential.check(s, candidates) for s in subjects]
        got = batched.check_batch(subjects, candidates)
        assert len(got) == len(expected)
        for a, b in zip(expected, got):
            _assert_results_identical(a, b)


class TestVectorisedStageDifferentials:
    """The matrix stage implementations vs their per-object references."""

    def test_conflict_free_counts_matches_scalar(self):
        for subscription, candidates in _instances():
            table = ConflictTable(subscription, candidates)
            rng = np.random.default_rng(1)
            subsets = [None, list(range(table.k))]
            if table.k > 2:
                subsets.append(
                    sorted(
                        rng.choice(table.k, size=table.k // 2, replace=False).tolist()
                    )
                )
            for rows in subsets:
                fast = table.conflict_free_counts(rows)
                slow = table._conflict_free_counts_scalar(rows)
                assert fast.tolist() == slow.tolist()

    def test_minimum_gap_measures_matches_scalar(self):
        for subscription, candidates in _instances():
            table = ConflictTable(subscription, candidates)
            for rows in (None, list(range(table.k))):
                fast = table.minimum_gap_measures(rows)
                slow = table._minimum_gap_measures_scalar(rows)
                # bit-exact, not approximately equal
                assert fast.tolist() == slow.tolist()

    def test_custom_domain_falls_back_to_scalar_path(self):
        class HalfMeasureDomain(IntegerDomain):
            """A user domain whose measure differs from the built-in."""

            def measure(self, interval):
                return super().measure(interval) / 2.0

        schema = Schema([("a", HalfMeasureDomain(0, 100))], name="custom")
        assert not schema.vectors.vectorisable
        subscription = Subscription(schema, [10.0], [90.0])
        candidate = Subscription(schema, [20.0], [80.0])
        table = ConflictTable(subscription, [candidate])
        fast = table.minimum_gap_measures()
        slow = table._minimum_gap_measures_scalar()
        assert fast.tolist() == slow.tolist()

    def test_cross_schema_fast_paths_raise_like_covers(self):
        first = Schema.uniform_integer(3, 0, 100)
        second = Schema.uniform_integer(3, 0, 50)
        snapshot = CandidateSet([Subscription(first, [0, 0, 0], [90, 90, 90])])
        foreign = Subscription(second, [10, 10, 10], [20, 20, 20])
        with pytest.raises(ValidationError):
            PairwiseCoverageChecker.check(foreign, snapshot)
        with pytest.raises(ValidationError):
            snapshot.covered_rows_mask(foreign)
        with pytest.raises(ValidationError):
            snapshot.covering_rows_mask(foreign)

    def test_iterator_candidates_still_accepted(self):
        from repro.core.policies import make_strategy

        schema = Schema.uniform_integer(2, 0, 9)
        subscription = Subscription(schema, [2, 2], [5, 5])
        coverer = Subscription(schema, [0, 0], [9, 9])
        checker = SubsumptionChecker(rng=1)
        assert checker.check(subscription, iter([coverer])).covered
        assert checker.theoretical_d(
            subscription, iter([coverer])
        ) == checker.theoretical_d(subscription, [coverer])
        for policy in ("group", "merging", "hybrid"):
            decision = make_strategy(policy).decide(subscription, iter([coverer]))
            assert not decision.forwarded

    def test_pairwise_check_vectorised_matches_scan(self):
        for subscription, candidates in _instances():
            scan = PairwiseCoverageChecker.check(subscription, list(candidates))
            fast = PairwiseCoverageChecker.check(
                subscription, CandidateSet(candidates)
            )
            assert scan.covered == fast.covered
            assert scan.comparisons == fast.comparisons
            if scan.covered:
                assert scan.covering.id == fast.covering.id

    def test_contains_values_matches_contains_point(self):
        rng = np.random.default_rng(9)
        for schema in (Schema.uniform_integer(7, 0, 100), _mixed_schema()):
            for _ in range(50):
                subscription = random_subscription(schema, rng)
                publication = random_publication(schema, rng)
                assert subscription.contains_values(
                    publication.values_list
                ) == subscription.contains_point(publication.values)


class TestSubscriptionArena:
    def test_add_select_remove_roundtrip(self):
        schema = Schema.uniform_integer(4, 0, 50)
        rng = np.random.default_rng(0)
        subs = [random_subscription(schema, rng) for _ in range(6)]
        arena = SubscriptionArena()
        for sub in subs:
            arena.add(sub)
        snapshot = arena.select(subs)
        assert snapshot.ids == tuple(s.id for s in subs)
        assert np.array_equal(snapshot.lows, np.vstack([s.lows for s in subs]))
        assert np.array_equal(snapshot.highs, np.vstack([s.highs for s in subs]))
        # removal recycles rows through the free-list
        row = arena.row_of(subs[2].id)
        arena.remove(subs[2].id)
        replacement = random_subscription(schema, rng)
        assert arena.add(replacement) == row
        reordered = [subs[4], subs[0], replacement]
        snapshot2 = arena.select(reordered)
        assert np.array_equal(
            snapshot2.lows, np.vstack([s.lows for s in reordered])
        )

    def test_version_bumps_on_every_mutation(self):
        schema = Schema.uniform_integer(2, 0, 9)
        arena = SubscriptionArena()
        v0 = arena.version
        sub = Subscription(schema, [1, 1], [5, 5])
        arena.add(sub)
        assert arena.version == v0 + 1
        arena.remove(sub.id)
        assert arena.version == v0 + 2

    def test_snapshot_survives_later_mutations(self):
        schema = Schema.uniform_integer(2, 0, 9)
        arena = SubscriptionArena()
        a = Subscription(schema, [1, 1], [5, 5])
        arena.add(a)
        snapshot = arena.select([a])
        lows_before = snapshot.lows.copy()
        for i in range(100):  # force several capacity doublings
            arena.add(Subscription(schema, [0, 0], [9, 9], subscription_id=f"g{i}"))
        assert np.array_equal(snapshot.lows, lows_before)

    def test_duplicate_and_mismatched_adds_rejected(self):
        schema = Schema.uniform_integer(2, 0, 9)
        other = Schema.uniform_integer(3, 0, 9)
        arena = SubscriptionArena()
        sub = Subscription(schema, [1, 1], [5, 5])
        arena.add(sub)
        with pytest.raises(ValidationError):
            arena.add(sub)
        with pytest.raises(ValidationError):
            arena.add(Subscription(other, [0, 0, 0], [1, 1, 1]))

    def test_as_candidate_set_passthrough(self):
        snapshot = CandidateSet(())
        assert as_candidate_set(snapshot) is snapshot
        assert len(as_candidate_set([])) == 0

    def test_mixed_schema_candidate_set_rejected(self):
        first = Schema.uniform_integer(2, 0, 9)
        second = Schema.uniform_integer(2, 0, 8)  # same m, different domain
        with pytest.raises(ValidationError):
            CandidateSet(
                [
                    Subscription(first, [0, 0], [5, 5]),
                    Subscription(second, [0, 0], [5, 5]),
                ]
            )

    def test_contains_values_validates_point_length(self):
        schema = Schema.uniform_integer(3, 0, 9)
        subscription = Subscription(schema, [0, 0, 0], [9, 9, 9])
        with pytest.raises(ValidationError):
            subscription.contains_values([1.0, 1.0])
        with pytest.raises(ValidationError):
            subscription.contains_values([1.0, 1.0, 1.0, 1.0])

    def test_contains_values_rejects_nan_like_contains_point(self):
        schema = Schema.uniform_integer(2, 0, 9)
        subscription = Subscription(schema, [0, 0], [9, 9])
        point = [float("nan"), 5.0]
        assert not subscription.contains_values(point)
        assert subscription.contains_values(point) == subscription.contains_point(
            np.array(point)
        )

    def test_conflict_table_from_empty_candidate_set(self):
        schema = Schema.uniform_integer(3, 0, 9)
        subscription = Subscription(schema, [0, 0, 0], [9, 9, 9])
        table = ConflictTable(subscription, CandidateSet(()))
        assert table.k == 0
        assert table.candidate_lows.shape == (0, 3)

    def test_store_degrades_gracefully_on_mixed_schemas_under_flooding(self):
        first = Schema.uniform_integer(2, 0, 9)
        second = Schema.uniform_integer(3, 0, 9)
        third = Schema.uniform_integer(2, 0, 5)  # same m as first, new schema
        store = SubscriptionStore(policy="none")
        store.add(Subscription(first, [0, 0], [5, 5]))
        store.add(Subscription(second, [0, 0, 0], [5, 5, 5]))
        store.add(Subscription(third, [0, 0], [5, 5]))
        assert store.active_count == 3  # flooding forwards everything
        # Same-m mixed schemas (arena accepts rows, snapshot refuses):
        mixed = SubscriptionStore(policy="none")
        mixed.add(Subscription(first, [0, 0], [5, 5]))
        mixed.add(Subscription(third, [1, 1], [4, 4]))
        mixed.add(Subscription(first, [2, 2], [3, 3]))
        assert mixed.active_count == 3


class TestVerdictCache:
    @staticmethod
    def _pairwise_covered_instance():
        schema = Schema.uniform_integer(3, 0, 100)
        subscription = Subscription(schema, [10, 10, 10], [20, 20, 20])
        coverer = Subscription(schema, [0, 0, 0], [50, 50, 50])
        return schema, subscription, coverer

    def test_deterministic_verdict_is_cached(self):
        _, subscription, coverer = self._pairwise_covered_instance()
        checker = SubsumptionChecker()
        snapshot = CandidateSet([coverer])
        first = checker.check(subscription, snapshot)
        second = checker.check(subscription, snapshot)
        assert first.method is DecisionMethod.PAIRWISE_COVER
        assert second is first
        assert checker.cache_hits == 1

    def test_plain_lists_are_never_cached(self):
        _, subscription, coverer = self._pairwise_covered_instance()
        checker = SubsumptionChecker()
        checker.check(subscription, [coverer])
        checker.check(subscription, [coverer])
        assert checker.cache_hits == 0
        assert checker.cache_misses == 0

    def test_hit_never_survives_invalidating_add_or_remove(self):
        schema, subscription, coverer = self._pairwise_covered_instance()
        checker = SubsumptionChecker()
        arena = SubscriptionArena()
        arena.add(coverer)
        snapshot = arena.select([coverer])
        checker.check(subscription, snapshot)
        assert checker.cache_misses == 1

        # An add invalidates: the snapshot must be re-taken, and the new
        # fingerprint cannot hit the stale entry.
        other = Subscription(schema, [60, 60, 60], [90, 90, 90])
        arena.add(other)
        fresh = arena.select([coverer, other])
        assert fresh.fingerprint != snapshot.fingerprint
        checker.check(subscription, fresh)
        assert checker.cache_hits == 0

        # A remove invalidates just the same.
        arena.remove(other.id)
        after_remove = arena.select([coverer])
        assert after_remove.fingerprint != snapshot.fingerprint
        checker.check(subscription, after_remove)
        assert checker.cache_hits == 0
        assert checker.cache_misses == 3

    def test_store_mutations_invalidate_cached_selection(self):
        schema, _, coverer = self._pairwise_covered_instance()
        store = SubscriptionStore(policy="pairwise")
        store.add(coverer)
        first = store.active_candidates()
        assert store.active_candidates() is first  # stable between mutations
        newcomer = Subscription(schema, [60, 60, 60], [95, 95, 95])
        store.add(newcomer)
        second = store.active_candidates()
        assert second is not first
        assert second.fingerprint != first.fingerprint
        store.remove(newcomer.id)
        third = store.active_candidates()
        assert third.fingerprint != second.fingerprint

    def test_changed_subscription_bounds_miss_despite_same_id(self):
        schema, subscription, coverer = self._pairwise_covered_instance()
        checker = SubsumptionChecker()
        snapshot = CandidateSet([coverer])
        checker.check(subscription, snapshot)
        moved = Subscription(
            schema, [90, 90, 90], [99, 99, 99], subscription_id=subscription.id
        )
        result = checker.check(moved, snapshot)
        assert checker.cache_hits == 0
        assert result.method is not DecisionMethod.PAIRWISE_COVER

    def test_probabilistic_verdicts_cached_only_on_request(self):
        schema = Schema.uniform_integer(2, 0, 50)
        subscription = Subscription(schema, [0, 0], [40, 40])
        candidates = [
            Subscription(schema, [0, 0], [40, 20]),
            Subscription(schema, [0, 15], [40, 40]),
        ]
        snapshot = CandidateSet(candidates)

        default = SubsumptionChecker(delta=1e-3, max_iterations=50, rng=1)
        first = default.check(subscription, snapshot)
        assert not first.certain  # RSPC decided
        default.check(subscription, snapshot)
        assert default.cache_hits == 0

        caching = SubsumptionChecker(
            delta=1e-3, max_iterations=50, rng=1, cache_probabilistic=True
        )
        first = caching.check(subscription, snapshot)
        second = caching.check(subscription, snapshot)
        assert caching.cache_hits == 1
        assert second is first

    def test_reconfigured_checker_never_reuses_stale_verdicts(self):
        _, subscription, coverer = self._pairwise_covered_instance()
        checker = SubsumptionChecker(max_iterations=50, rng=3)
        snapshot = CandidateSet([coverer])
        first = checker.check(subscription, snapshot)
        assert first.method is DecisionMethod.PAIRWISE_COVER
        checker.use_fast_decisions = False  # ablation-style toggle
        second = checker.check(subscription, snapshot)
        assert checker.cache_hits == 0
        assert second.method is not DecisionMethod.PAIRWISE_COVER

    def test_disabling_cache_probabilistic_stops_serving_cached_rspc(self):
        schema = Schema.uniform_integer(2, 0, 50)
        subscription = Subscription(schema, [0, 0], [40, 40])
        snapshot = CandidateSet(
            [
                Subscription(schema, [0, 0], [40, 20]),
                Subscription(schema, [0, 15], [40, 40]),
            ]
        )
        checker = SubsumptionChecker(
            delta=1e-3, max_iterations=50, rng=1, cache_probabilistic=True
        )
        first = checker.check(subscription, snapshot)
        assert not first.certain
        checker.cache_probabilistic = False
        checker.check(subscription, snapshot)
        assert checker.cache_hits == 0  # RSPC re-ran under the new config

    def test_cache_size_zero_disables_caching(self):
        _, subscription, coverer = self._pairwise_covered_instance()
        checker = SubsumptionChecker(cache_size=0)
        snapshot = CandidateSet([coverer])
        checker.check(subscription, snapshot)
        checker.check(subscription, snapshot)
        assert checker.cache_hits == 0

    def test_lru_eviction_respects_capacity(self):
        schema, subscription, coverer = self._pairwise_covered_instance()
        checker = SubsumptionChecker(cache_size=2)
        snapshots = [CandidateSet([coverer]) for _ in range(3)]
        for snapshot in snapshots:
            checker.check(subscription, snapshot)
        assert len(checker._cache) == 2
        # The oldest snapshot was evicted; re-checking it misses.
        checker.check(subscription, snapshots[0])
        assert checker.cache_hits == 0


class TestStoreAndStrategyThreading:
    def test_store_reinsertion_storm_identical_to_object_semantics(self):
        """Unsubscribe re-check storms agree with a freshly rebuilt store."""
        schema = Schema.uniform_integer(4, 0, 200)
        rng = np.random.default_rng(8)
        store = SubscriptionStore(
            policy="group",
            checker=SubsumptionChecker(delta=1e-3, max_iterations=40, rng=2),
        )
        subs = [
            random_subscription(schema, rng, width_fraction=(0.2, 0.8))
            for _ in range(30)
        ]
        for sub in subs:
            store.add(sub)
        # Storm: remove a prefix of the active set, forcing re-insertions.
        for sub in list(store.active)[:5]:
            store.remove_detailed(sub.id)
        # Every surviving subscription is in exactly one pool, and the
        # arena mirrors the active pool exactly.
        active_ids = {s.id for s in store.active}
        covered_ids = {s.id for s in store.covered}
        assert not (active_ids & covered_ids)
        assert len(store.arena) == len(active_ids)
        for sub in store.active:
            assert sub.id in store.arena
        snapshot = store.active_candidates()
        assert np.array_equal(
            snapshot.lows, np.vstack([s.lows for s in store.active])
        )

    def test_decide_batch_matches_sequential_decides(self):
        from repro.core.policies import make_strategy

        schema = Schema.uniform_integer(3, 0, 100)
        rng = np.random.default_rng(3)
        candidates = [
            random_subscription(schema, rng, width_fraction=(0.2, 0.7))
            for _ in range(8)
        ]
        subjects = [
            random_subscription(schema, rng, width_fraction=(0.1, 0.9))
            for _ in range(6)
        ]
        for policy in ("none", "pairwise", "merging"):
            strategy_a = make_strategy(policy)
            strategy_b = make_strategy(policy)
            expected = [strategy_a.decide(s, list(candidates)) for s in subjects]
            got = strategy_b.decide_batch(subjects, candidates)
            for a, b in zip(expected, got):
                assert a.forwarded == b.forwarded
                assert a.covered_by == b.covered_by
                assert a.candidates_considered == b.candidates_considered
                assert (a.merged is None) == (b.merged is None)
                if a.merged is not None:
                    assert a.merged.same_box(b.merged)
                    assert a.false_volume == b.false_volume

    def test_store_add_batch_matches_sequential_adds(self):
        schema = Schema.uniform_integer(3, 0, 100)
        rng = np.random.default_rng(4)
        subs = [
            random_subscription(schema, rng, width_fraction=(0.1, 0.9))
            for _ in range(20)
        ]
        sequential = SubscriptionStore(
            policy="group",
            checker=SubsumptionChecker(delta=1e-3, max_iterations=40, rng=6),
        )
        batched = SubscriptionStore(
            policy="group",
            checker=SubsumptionChecker(delta=1e-3, max_iterations=40, rng=6),
        )
        expected = [sequential.add(sub) for sub in subs]
        got = batched.add_batch(subs)
        for a, b in zip(expected, got):
            assert a.forwarded == b.forwarded
            assert a.covered_by == b.covered_by
            assert tuple(d.id for d in a.demoted) == tuple(d.id for d in b.demoted)
        assert [s.id for s in sequential.active] == [s.id for s in batched.active]
        assert sequential.stats == batched.stats
