"""Tests for scenario compilation, execution, tracing and replay."""

import dataclasses
import json

import pytest

from repro.scenarios import (
    EventAction,
    ScenarioRunner,
    compile_scenario,
    get_scenario,
    read_trace,
    write_trace,
)
from repro.scenarios.cli import main
from repro.scenarios.trace import TraceError


def _phase_metrics(report):
    return [(phase.name, phase.events, phase.metrics) for phase in report.phases]


class TestCompilation:
    def test_same_spec_and_seed_gives_identical_trace_hash(self):
        spec = get_scenario("t0-smoke")
        first = compile_scenario(spec, seed=7)
        second = compile_scenario(spec, seed=7)
        assert first.trace_hash() == second.trace_hash()

    def test_different_seed_gives_different_stream(self):
        spec = get_scenario("t0-smoke")
        assert (
            compile_scenario(spec, seed=1).trace_hash()
            != compile_scenario(spec, seed=2).trace_hash()
        )

    def test_identifiers_are_scenario_scoped(self):
        compiled = compile_scenario(get_scenario("t0-smoke"), seed=0)
        subscribes = [
            e for e in compiled.events if e.action is EventAction.SUBSCRIBE
        ]
        assert [e.subscription.id for e in subscribes[:3]] == [
            "s00001",
            "s00002",
            "s00003",
        ]

    def test_unsubscribes_target_live_subscriptions(self):
        compiled = compile_scenario(get_scenario("t1-churn"), seed=0)
        live = {}
        for event in compiled.events:
            if event.action is EventAction.SUBSCRIBE:
                live[event.subscription.id] = event.client
            elif event.action is EventAction.UNSUBSCRIBE:
                # must cancel a live subscription, from the owning client
                assert live.pop(event.subscription_id) == event.client


class TestReplay:
    def test_trace_round_trip_preserves_stream(self, tmp_path):
        compiled = compile_scenario(get_scenario("t0-smoke"), seed=5)
        path = tmp_path / "t0.jsonl"
        digest = write_trace(path, compiled)
        loaded = read_trace(path)
        assert loaded.trace_hash() == digest == compiled.trace_hash()
        assert loaded.edges == compiled.edges
        assert loaded.clients == compiled.clients
        assert loaded.spec == compiled.spec

    def test_replay_reproduces_per_phase_metrics(self, tmp_path):
        spec = get_scenario("t0-smoke")
        compiled = compile_scenario(spec, seed=7)
        original = ScenarioRunner(spec, seed=7).run(compiled)

        path = tmp_path / "run.jsonl"
        write_trace(path, compiled)
        replayed = ScenarioRunner().run(read_trace(path))

        assert _phase_metrics(replayed) == _phase_metrics(original)
        assert replayed.totals == original.totals
        assert replayed.trace_hash == original.trace_hash

    def test_replay_defaults_to_the_recorded_backend(self, tmp_path):
        compiled = compile_scenario(get_scenario("t0-smoke"), seed=2)
        path = tmp_path / "engine.jsonl"
        write_trace(path, compiled, backend="engine")
        loaded = read_trace(path)
        assert loaded.recorded_backend == "engine"
        original = ScenarioRunner(backend="engine").run(compiled)
        replayed = ScenarioRunner(backend=loaded.recorded_backend).run(loaded)
        assert _phase_metrics(replayed) == _phase_metrics(original)

    def test_tampered_header_is_rejected(self, tmp_path):
        """The hash binds the header too, not just the event lines."""
        compiled = compile_scenario(get_scenario("t0-smoke"), seed=1)
        path = tmp_path / "hdr.jsonl"
        write_trace(path, compiled)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["scenario"]["policy"] = "pairwise"
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="hash mismatch"):
            read_trace(path)

    def test_corrupted_trace_is_rejected(self, tmp_path):
        compiled = compile_scenario(get_scenario("t0-smoke"), seed=1)
        path = tmp_path / "bad.jsonl"
        write_trace(path, compiled)
        lines = path.read_text().splitlines()
        del lines[3]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_non_trace_file_is_rejected(self, tmp_path):
        path = tmp_path / "not-a-trace.jsonl"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(TraceError, match="not a scenario trace"):
            read_trace(path)


class TestEndToEnd:
    def test_t0_pairwise_run_loses_no_notifications(self):
        """Churn-free T0 under the deterministic pairwise policy is lossless."""
        spec = dataclasses.replace(get_scenario("t0-discovery"), policy="pairwise")
        report = ScenarioRunner(spec, seed=3).run()
        assert report.totals["notifications"] > 0
        assert report.totals["missed_notifications"] == 0
        assert report.false_decision_rate == 0.0
        assert report.totals["delivery_ratio"] == 1.0

    def test_phase_reports_cover_the_whole_timeline(self):
        spec = get_scenario("t0-smoke")
        report = ScenarioRunner(spec, seed=2).run()
        assert [phase.name for phase in report.phases] == list(spec.phase_names)
        assert sum(phase.events for phase in report.phases) == report.event_count
        storm = next(p for p in report.phases if p.name == "storm")
        assert storm.unsubscribes > 0
        assert storm.metrics["unsubscription_messages"] > 0

    def test_engine_backend_runs_the_same_stream(self):
        spec = get_scenario("t0-smoke")
        compiled = compile_scenario(spec, seed=4)
        report = ScenarioRunner(backend="engine").run(compiled)
        assert report.backend == "engine"
        assert report.event_count == compiled.event_count
        assert report.totals["publications"] > 0
        # the rendered table shows the engine's own metrics, not dashes
        rendered = report.render()
        assert "active tests" in rendered
        assert "stored subs" in rendered

    def test_report_serializes_and_renders(self):
        report = ScenarioRunner(get_scenario("t0-smoke"), seed=1).run()
        payload = report.to_dict()
        json.dumps(payload)  # JSON-safe
        assert payload["scenario"] == "t0-smoke"
        rendered = report.render()
        assert "t0-smoke" in rendered
        assert "TOTAL" in rendered


class TestCli:
    def test_list_shows_all_tiers(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("t0-smoke", "t1-churn", "t3-stress"):
            assert name in output

    def test_describe_shows_timeline(self, capsys):
        assert main(["describe", "t1-churn"]) == 0
        output = capsys.readouterr().out
        assert "subscribe_ramp" in output
        assert "unsubscribe_storm" in output

    def test_run_then_replay_match(self, capsys, tmp_path):
        trace = str(tmp_path / "cli.jsonl")
        assert main(["run", "t0-smoke", "--seed", "7", "--trace", trace,
                     "--json"]) == 0
        run_payload = json.loads(capsys.readouterr().out)
        assert main(["replay", trace, "--json"]) == 0
        replay_payload = json.loads(capsys.readouterr().out)

        strip = lambda r: [
            {"name": p["name"], "events": p["events"], "metrics": p["metrics"]}
            for p in r["phases"]
        ]
        assert strip(run_payload) == strip(replay_payload)
        assert run_payload["totals"] == replay_payload["totals"]
        assert run_payload["trace_hash"] == replay_payload["trace_hash"]

    def test_unknown_scenario_exits_nonzero(self, capsys):
        assert main(["run", "definitely-not-registered"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
