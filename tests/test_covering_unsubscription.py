"""Regression tests for covering-unsubscription route loss.

When a subscription whose coverage suppressed the forwarding of other
subscriptions unsubscribes, the suppressed subscriptions must be
re-advertised on the affected links — otherwise their routes are silently
lost forever and every publication that only they match goes undelivered.
These tests pin the exact repro from the issue (subscribe(s1 ⊇ s2) →
unsubscribe(s1) → publish(p ∈ s2)) and then batter the fix with
unsubscribe storms across policies and canonical topologies.
"""

import numpy as np
import pytest

from repro.broker import (
    BrokerNetwork,
    CoveringPolicy,
    grid_topology,
    line_topology,
)
from repro.model import Publication, Schema, Subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(2, 0, 100)


def box(schema, x1, x2, sid=None):
    return Subscription.from_constraints(
        schema, {"x1": x1, "x2": x2}, subscription_id=sid
    )


class TestIssueRepro:
    """The exact sequence from the bug report, under exact (pairwise) covering."""

    def _network(self, policy):
        network = BrokerNetwork(line_topology(3), policy=policy, rng=0)
        network.attach_client("sub-wide", "B1")
        network.attach_client("sub-narrow", "B1")
        network.attach_client("pub", "B3")
        return network

    def test_covered_route_survives_coverer_unsubscription(self, schema):
        network = self._network(CoveringPolicy.PAIRWISE)
        s1 = box(schema, (0, 60), (0, 60), sid="s1")  # the coverer
        s2 = box(schema, (10, 20), (10, 20), sid="s2")  # s2 ⊑ s1
        network.subscribe("sub-wide", s1)
        network.subscribe("sub-narrow", s2)
        # s2 was suppressed somewhere on the path toward B3.
        assert network.metrics.suppressed_subscriptions >= 1

        network.unsubscribe("sub-wide", "s1")

        publication = Publication.from_values(schema, {"x1": 15, "x2": 15})
        delivered = network.publish("pub", publication)
        assert {record.subscriber for record in delivered} == {"sub-narrow"}
        assert network.metrics.missed == []
        assert network.metrics.delivery_ratio == 1.0

    def test_readvertisement_restores_downstream_routes(self, schema):
        network = self._network(CoveringPolicy.PAIRWISE)
        network.subscribe("sub-wide", box(schema, (0, 60), (0, 60), sid="s1"))
        network.subscribe("sub-narrow", box(schema, (10, 20), (10, 20), sid="s2"))
        # Suppression means B2/B3 only know s1 (plus s2 at its home broker).
        assert "s2" not in network.brokers["B3"].routing

        network.unsubscribe("sub-wide", "s1")
        # The re-advertisement propagated s2 all the way down the line.
        assert "s2" in network.brokers["B2"].routing
        assert "s2" in network.brokers["B3"].routing
        assert "s1" not in network.brokers["B2"].routing

    def test_readvertisement_counts_as_subscription_traffic(self, schema):
        network = self._network(CoveringPolicy.PAIRWISE)
        network.subscribe("sub-wide", box(schema, (0, 60), (0, 60), sid="s1"))
        network.subscribe("sub-narrow", box(schema, (10, 20), (10, 20), sid="s2"))
        before = network.metrics.subscription_messages
        network.unsubscribe("sub-wide", "s1")
        # The re-advertised s2 hops are accounted like any subscription hop.
        assert network.metrics.subscription_messages > before

    def test_suppression_bookkeeping_cleared_when_covered_sub_leaves(self, schema):
        network = self._network(CoveringPolicy.PAIRWISE)
        network.subscribe("sub-wide", box(schema, (0, 60), (0, 60), sid="s1"))
        network.subscribe("sub-narrow", box(schema, (10, 20), (10, 20), sid="s2"))
        broker = network.brokers["B1"]
        assert any("s2" in per_link for per_link in broker.suppressed.values())
        network.unsubscribe("sub-narrow", "s2")
        assert not any("s2" in per_link for per_link in broker.suppressed.values())
        # s1's departure now has nothing to re-advertise and loses no mail.
        network.unsubscribe("sub-wide", "s1")
        publication = Publication.from_values(schema, {"x1": 15, "x2": 15})
        assert network.publish("pub", publication) == []
        assert network.metrics.missed == []


class TestGroupCoverDependencies:
    """Under the group policy the whole candidate set is a dependency."""

    def test_joint_cover_rechecked_when_one_member_leaves(self, schema):
        network = BrokerNetwork(line_topology(3), policy=CoveringPolicy.GROUP, rng=5)
        network.attach_client("subs", "B1")
        network.attach_client("pub", "B3")
        # a and b jointly (but not singly) cover c.
        network.subscribe("subs", box(schema, (0, 50), (0, 100), sid="a"))
        network.subscribe("subs", box(schema, (40, 100), (0, 100), sid="b"))
        network.subscribe("subs", box(schema, (10, 90), (10, 90), sid="c"))
        suppressed = network.metrics.suppressed_subscriptions

        network.unsubscribe("subs", "a")
        # c (only matched by c now in the gap a left behind) must be routable.
        publication = Publication.from_values(schema, {"x1": 20, "x2": 20})
        delivered = network.publish("pub", publication)
        assert {record.subscription_id for record in delivered} == {"c"}
        assert network.metrics.missed == []
        # the re-check ran through the probabilistic machinery
        assert network.metrics.subsumption_checks > suppressed


def _churn(network, schema, rng, subscriptions=24, publications=30):
    """Nested-box churn: subscribe everything, storm half, publish, repeat."""
    clients = [f"c{i}" for i in range(4)]
    for index, client in enumerate(clients):
        network.attach_client(client, network.broker_ids[index % len(network.broker_ids)])
    publisher = "publisher"
    network.attach_client(publisher, network.broker_ids[-1])

    live = []
    for index in range(subscriptions):
        # Alternate wide coverers and narrow covered boxes so every policy
        # has suppression opportunities.
        if index % 2 == 0:
            low = rng.integers(0, 30, size=2)
            high = low + rng.integers(40, 70, size=2)
        else:
            low = rng.integers(20, 40, size=2)
            high = low + rng.integers(5, 15, size=2)
        subscription = Subscription.from_constraints(
            schema,
            {
                "x1": (int(low[0]), int(min(high[0], 100))),
                "x2": (int(low[1]), int(min(high[1], 100))),
            },
            subscription_id=f"s{index:03d}",
        )
        client = clients[index % len(clients)]
        network.subscribe(client, subscription)
        live.append((client, subscription.id))

    def burst():
        for _ in range(publications // 3):
            publication = Publication(
                schema,
                [float(rng.integers(0, 101)), float(rng.integers(0, 101))],
            )
            network.publish(publisher, publication)

    burst()
    # Storm: remove a random half, in random order.
    order = rng.permutation(len(live))
    for position in order[: len(live) // 2]:
        client, sid = live[position]
        network.unsubscribe(client, sid)
    burst()
    # Second storm: remove the rest.
    for position in order[len(live) // 2:]:
        client, sid = live[position]
        network.unsubscribe(client, sid)
    burst()


TOPOLOGIES = {
    "chain": lambda: line_topology(4),
    "grid": lambda: grid_topology(2, 3),
}


class TestUnsubscribeStorms:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("policy", [CoveringPolicy.NONE, CoveringPolicy.PAIRWISE])
    def test_deterministic_policies_lose_nothing(self, schema, topology, policy):
        for seed in (0, 1):
            network = BrokerNetwork(TOPOLOGIES[topology](), policy=policy, rng=seed)
            _churn(network, schema, np.random.default_rng(seed))
            assert network.metrics.missed == [], (
                f"{policy.value} on {topology} (seed {seed}) lost "
                f"{len(network.metrics.missed)} notifications"
            )
            assert network.metrics.delivery_ratio == 1.0

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_group_policy_loss_is_bounded_and_accounted(self, schema, topology):
        network = BrokerNetwork(
            TOPOLOGIES[topology](), policy=CoveringPolicy.GROUP, rng=2, delta=1e-6
        )
        _churn(network, schema, np.random.default_rng(2))
        metrics = network.metrics
        # Loss, if any, is exactly what the oracle says went missing …
        assert metrics.missed_notifications == len(metrics.missed)
        assert (
            metrics.notifications + len(metrics.missed)
            == metrics.expected_notifications
        )
        # … and with delta=1e-6 the probabilistic checker is near-exact.
        assert metrics.delivery_ratio >= 0.99

    def test_storm_then_publish_matches_oracle_routing_state(self, schema):
        """After a full storm, no stale routes remain anywhere."""
        network = BrokerNetwork(line_topology(4), policy=CoveringPolicy.PAIRWISE, rng=3)
        _churn(network, schema, np.random.default_rng(3))
        assert network.total_routing_entries() == 0
        for broker in network.brokers.values():
            assert all(not entries for entries in broker.sent.values())
            assert all(not entries for entries in broker.suppressed.values())
