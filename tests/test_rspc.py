"""Unit tests for :mod:`repro.core.rspc` (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.rspc import RSPCOutcome, run_rspc, _sample_points
from repro.model import Schema, Subscription


class TestSamplePoints:
    def test_points_inside_subscription(self, schema_small, rng):
        subscription = Subscription.from_constraints(
            schema_small, {"x1": (10, 20), "x2": (5, 5)}
        )
        points = _sample_points(subscription, rng, 200)
        assert points.shape == (200, 3)
        for point in points:
            assert subscription.contains_point(point)
        assert np.all(points[:, 1] == 5.0)

    def test_discrete_points_are_integral(self, schema_small, rng):
        subscription = Subscription.from_constraints(schema_small, {"x1": (0, 3)})
        points = _sample_points(subscription, rng, 50)
        assert np.all(points == np.round(points))


class TestRunRSPC:
    def test_no_candidates_returns_not_covered(self, table3_subscription, rng):
        result = run_rspc(table3_subscription, [], rho_w=1.0, rng=rng)
        assert result.outcome is RSPCOutcome.NO_CANDIDATES
        assert not result.covered
        assert result.iterations_performed == 0

    def test_witness_found_in_noncover_example(
        self, table6_subscription, table6_candidates, rng
    ):
        result = run_rspc(
            table6_subscription,
            table6_candidates,
            rho_w=0.3,
            delta=1e-6,
            rng=rng,
            max_iterations=10_000,
        )
        assert result.outcome is RSPCOutcome.WITNESS_FOUND
        assert not result.covered
        assert result.witness_point is not None
        assert table6_subscription.contains_point(result.witness_point)
        assert not any(
            c.contains_point(result.witness_point) for c in table6_candidates
        )
        assert result.error_bound == 0.0
        assert 1 <= result.iterations_performed <= result.iterations_allowed

    def test_exhausted_when_covered(
        self, table3_subscription, table3_candidates, rng
    ):
        result = run_rspc(
            table3_subscription,
            table3_candidates,
            rho_w=0.25,
            delta=1e-6,
            rng=rng,
        )
        assert result.outcome is RSPCOutcome.EXHAUSTED
        assert result.covered
        assert result.witness_point is None
        assert result.error_bound <= 1e-6
        assert result.iterations_performed == result.iterations_allowed

    def test_budget_follows_equation_one(self, table3_subscription, table3_candidates, rng):
        result = run_rspc(
            table3_subscription,
            table3_candidates,
            rho_w=0.5,
            delta=1e-3,
            rng=rng,
        )
        # d = ceil(log(1e-3)/log(0.5)) = 10
        assert result.iterations_allowed == 10
        assert result.theoretical_iterations == 10
        assert not result.truncated

    def test_truncation_reported(self, table3_subscription, table3_candidates, rng):
        result = run_rspc(
            table3_subscription,
            table3_candidates,
            rho_w=1e-6,
            delta=1e-10,
            rng=rng,
            max_iterations=50,
        )
        assert result.truncated
        assert result.iterations_allowed == 50
        assert result.error_bound > 1e-10

    def test_seeded_runs_are_reproducible(
        self, table6_subscription, table6_candidates
    ):
        first = run_rspc(
            table6_subscription, table6_candidates, rho_w=0.3, rng=42, max_iterations=100
        )
        second = run_rspc(
            table6_subscription, table6_candidates, rho_w=0.3, rng=42, max_iterations=100
        )
        assert first.iterations_performed == second.iterations_performed
        assert np.array_equal(first.witness_point, second.witness_point)

    def test_never_false_negative_on_covered_instances(self, schema_2d, rng):
        """RSPC can only err toward 'covered'; a NO answer is always right."""
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 50), "x2": (0, 50)})
        coverer = Subscription.from_constraints(
            schema_2d, {"x1": (0, 50), "x2": (0, 50)}
        )
        for _ in range(20):
            result = run_rspc(s, [coverer], rho_w=0.9, delta=1e-3, rng=rng)
            assert result.covered

    def test_statistical_error_rate_within_bound(self, schema_2d):
        """With d derived from Eq. 1 the empirical false-YES rate stays below
        a generous multiple of delta (here delta is large to keep runs fast)."""
        rng = np.random.default_rng(7)
        s = Subscription.from_constraints(schema_2d, {"x1": (0, 99), "x2": (0, 99)})
        # Candidate covers 90% of s on x1: true witness probability is 0.1.
        candidate = Subscription.from_constraints(
            schema_2d, {"x1": (0, 89), "x2": (0, 99)}
        )
        delta = 0.05
        failures = 0
        runs = 200
        for _ in range(runs):
            result = run_rspc(s, [candidate], rho_w=0.1, delta=delta, rng=rng)
            if result.covered:
                failures += 1
        assert failures / runs <= 3 * delta
